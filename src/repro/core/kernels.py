"""Vectorized hot-path kernels backing the core algorithms.

The pure-Python implementations of the cost-model hot paths — CDS's
per-(item, destination) Δc scan, Procedure ``Partition``'s split scan
and the contiguous DP's candidate minimisation — are exact but slow at
production catalogue sizes (N in the tens of thousands).  This module
provides numpy equivalents that compute the *same IEEE-754 floats* as
the scalar code: every kernel applies the identical sequence of
elementwise operations the scalar loop performs, so the two backends
agree bit-for-bit and share one set of golden tests.

Backend selection
-----------------
Every public algorithm entry point (``cds_refine``, ``drp_allocate``,
``best_split_in``, ``contiguous_optimal``) accepts a
``backend="auto" | "python" | "numpy"`` keyword:

* ``"python"`` — the scalar reference implementation;
* ``"numpy"`` — the vectorized kernels in this module (raises
  :class:`~repro.exceptions.ReproError` when numpy is unavailable);
* ``"auto"`` — numpy when importable, scalar otherwise (the default).

Tie-break contract
------------------
All kernels preserve the scalar code's "first maximum / first minimum
wins" determinism: ``np.argmax`` / ``np.argmin`` return the first
occurrence of the extremum, which is exactly what the scalar strict
``>`` / ``<`` comparison loops select.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import ReproError

try:  # numpy ships with the workload generators; degrade gracefully.
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "BACKENDS",
    "resolve_backend",
    "cds_state_arrays",
    "cds_best_move_numpy",
    "best_split_range_numpy",
    "dp_window_argmin_numpy",
]

#: Recognised backend names.
BACKENDS = ("auto", "python", "numpy")


def resolve_backend(backend: str) -> str:
    """Map a ``backend`` keyword to a concrete implementation name.

    Returns ``"python"`` or ``"numpy"``.

    Raises
    ------
    ReproError
        If ``backend`` is unknown, or ``"numpy"`` was requested but
        numpy is not importable.
    """
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise ReproError("backend='numpy' requested but numpy is not installed")
    return backend


# ----------------------------------------------------------------------
# CDS — broadcasted Δc matrix
# ----------------------------------------------------------------------
def cds_state_arrays(channels, channel_stats):
    """Build the flat-array working state for the numpy CDS loop.

    Parameters
    ----------
    channels:
        Per-channel item sequences (the allocation's groups).
    channel_stats:
        Matching per-channel aggregates (``F_i``, ``Z_i``).

    Returns
    -------
    (items, freq, size, group_of, groups, agg_f, agg_z):
        ``items`` is the flat item table (origin-major order), ``freq``
        and ``size`` its per-item features, ``group_of[i]`` the current
        channel of item ``i``, ``groups`` per-channel lists of item
        indices (mirroring the scalar backend's mutable lists, so the
        scan order stays identical move for move), and ``agg_f`` /
        ``agg_z`` the per-channel aggregate arrays.
    """
    items = [item for group in channels for item in group]
    freq = np.array([item.frequency for item in items], dtype=np.float64)
    size = np.array([item.size for item in items], dtype=np.float64)
    group_of = np.empty(len(items), dtype=np.intp)
    groups = []
    offset = 0
    for channel, group in enumerate(channels):
        indices = list(range(offset, offset + len(group)))
        group_of[indices] = channel
        groups.append(indices)
        offset += len(group)
    agg_f = np.array([stat.frequency for stat in channel_stats], dtype=np.float64)
    agg_z = np.array([stat.size for stat in channel_stats], dtype=np.float64)
    return items, freq, size, group_of, groups, agg_f, agg_z


def cds_best_move_numpy(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
) -> Optional[Tuple[float, int, int]]:
    """Vectorized equivalent of ``cds._best_move`` — one N×K Δc matrix.

    Evaluates Eq. (4), ``Δc = f⊗(Z_p − Z_q) + z⊗(F_p − F_q) − 2fz``,
    for every (item, destination) pair at once.  ``order`` is the flat
    item-index array in scan order (origin-major, position-minor), so
    the row-major argmax reproduces the scalar backend's tie-break
    exactly (first strict maximum in origin → position → destination
    order wins).

    Returns ``(delta, rank, destination)`` — ``rank`` indexes into
    ``order`` — or ``None`` when no move beats ``epsilon``.
    """
    f = freq[order]
    z = size[order]
    origin = group_of[order]
    origin_f = agg_f[origin]
    origin_z = agg_z[origin]
    delta = (
        f[:, None] * (origin_z[:, None] - agg_z[None, :])
        + z[:, None] * (origin_f[:, None] - agg_f[None, :])
        - (2.0 * f * z)[:, None]
    )
    # A move to the item's own channel is not a move; mask it out.
    delta[np.arange(len(order)), origin] = -np.inf
    flat = int(np.argmax(delta))
    num_channels = agg_f.shape[0]
    rank, destination = divmod(flat, num_channels)
    best = float(delta[rank, destination])
    if not best > epsilon:
        return None
    return best, rank, destination


# ----------------------------------------------------------------------
# Partition — range-based split scan over shared prefix sums
# ----------------------------------------------------------------------
def best_split_range_numpy(pf, pz, start: int, stop: int) -> Tuple[int, float]:
    """Vectorized split scan over the half-open range ``[start, stop)``.

    ``pf`` / ``pz`` are the shared prefix-sum arrays (length N+1).
    Returns ``(offset, cost)`` with ``1 <= offset < stop - start``; the
    first minimum wins, matching the scalar strict-``<`` scan.
    """
    cut = np.arange(start + 1, stop)
    left = (pf[cut] - pf[start]) * (pz[cut] - pz[start])
    right = (pf[stop] - pf[cut]) * (pz[stop] - pz[cut])
    total = left + right
    index = int(np.argmin(total))
    return index + 1, float(total[index])


# ----------------------------------------------------------------------
# Contiguous DP — candidate-window argmin for the monotone D&C layer
# ----------------------------------------------------------------------
def dp_window_argmin_numpy(dp_prev, pf, pz, i: int, lo: int, hi: int):
    """Minimise ``dp_prev[j] + cost(j, i)`` over ``j in [lo, hi)``.

    Returns ``(j, value)`` with the first minimum winning — identical
    floats and tie-break to the quadratic oracle's inner loop.
    """
    j = np.arange(lo, hi)
    values = dp_prev[lo:hi] + (pf[i] - pf[j]) * (pz[i] - pz[j])
    k = int(np.argmin(values))
    return lo + k, float(values[k])
