"""Vectorized hot-path kernels backing the core algorithms.

The pure-Python implementations of the cost-model hot paths — CDS's
per-(item, destination) Δc scan, Procedure ``Partition``'s split scan
and the contiguous DP's candidate minimisation — are exact but slow at
production catalogue sizes (N in the tens of thousands).  This module
provides numpy equivalents that compute the *same IEEE-754 floats* as
the scalar code: every kernel applies the identical sequence of
elementwise operations the scalar loop performs, so the two backends
agree bit-for-bit and share one set of golden tests.

Backend selection
-----------------
Every public algorithm entry point (``cds_refine``, ``drp_allocate``,
``best_split_in``, ``contiguous_optimal``) accepts a
``backend="auto" | "python" | "numpy"`` keyword:

* ``"python"`` — the scalar reference implementation;
* ``"numpy"`` — the vectorized kernels in this module (raises
  :class:`~repro.exceptions.ReproError` when numpy is unavailable);
* ``"auto"`` — numpy when importable, scalar otherwise (the default).

Tie-break contract
------------------
All kernels preserve the scalar code's "first maximum / first minimum
wins" determinism: ``np.argmax`` / ``np.argmin`` return the first
occurrence of the extremum, which is exactly what the scalar strict
``>`` / ``<`` comparison loops select.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.exceptions import ReproError

try:  # numpy ships with the workload generators; degrade gracefully.
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

try:  # numba is optional everywhere; the JIT path is a pure accelerant.
    import numba

    HAS_NUMBA = True
except ImportError:
    numba = None  # type: ignore[assignment]
    HAS_NUMBA = False

__all__ = [
    "HAS_NUMPY",
    "HAS_NUMBA",
    "BACKENDS",
    "resolve_backend",
    "cds_state_arrays",
    "cds_best_move",
    "cds_best_move_numpy",
    "cds_best_move_chunked",
    "best_split_range_numpy",
    "dp_window_argmin_numpy",
]

#: Recognised backend names.
BACKENDS = ("auto", "python", "numpy")


def resolve_backend(backend: str) -> str:
    """Map a ``backend`` keyword to a concrete implementation name.

    Returns ``"python"`` or ``"numpy"``.

    Raises
    ------
    ReproError
        If ``backend`` is unknown, or ``"numpy"`` was requested but
        numpy is not importable.
    """
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if backend == "numpy" and not HAS_NUMPY:
        raise ReproError("backend='numpy' requested but numpy is not installed")
    return backend


# ----------------------------------------------------------------------
# CDS — broadcasted Δc matrix
# ----------------------------------------------------------------------
def cds_state_arrays(channels, channel_stats):
    """Build the flat-array working state for the numpy CDS loop.

    Parameters
    ----------
    channels:
        Per-channel item sequences (the allocation's groups).
    channel_stats:
        Matching per-channel aggregates (``F_i``, ``Z_i``).

    Returns
    -------
    (items, freq, size, group_of, groups, agg_f, agg_z):
        ``items`` is the flat item table (origin-major order), ``freq``
        and ``size`` its per-item features, ``group_of[i]`` the current
        channel of item ``i``, ``groups`` per-channel lists of item
        indices (mirroring the scalar backend's mutable lists, so the
        scan order stays identical move for move), and ``agg_f`` /
        ``agg_z`` the per-channel aggregate arrays.
    """
    items = [item for group in channels for item in group]
    freq = np.array([item.frequency for item in items], dtype=np.float64)
    size = np.array([item.size for item in items], dtype=np.float64)
    group_of = np.empty(len(items), dtype=np.intp)
    groups = []
    offset = 0
    for channel, group in enumerate(channels):
        indices = list(range(offset, offset + len(group)))
        group_of[indices] = channel
        groups.append(indices)
        offset += len(group)
    agg_f = np.array([stat.frequency for stat in channel_stats], dtype=np.float64)
    agg_z = np.array([stat.size for stat in channel_stats], dtype=np.float64)
    return items, freq, size, group_of, groups, agg_f, agg_z


def cds_best_move_numpy(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
) -> Optional[Tuple[float, int, int]]:
    """Vectorized equivalent of ``cds._best_move`` — one N×K Δc matrix.

    Evaluates Eq. (4), ``Δc = f⊗(Z_p − Z_q) + z⊗(F_p − F_q) − 2fz``,
    for every (item, destination) pair at once.  ``order`` is the flat
    item-index array in scan order (origin-major, position-minor), so
    the row-major argmax reproduces the scalar backend's tie-break
    exactly (first strict maximum in origin → position → destination
    order wins).

    Returns ``(delta, rank, destination)`` — ``rank`` indexes into
    ``order`` — or ``None`` when no move beats ``epsilon``.
    """
    f = freq[order]
    z = size[order]
    origin = group_of[order]
    origin_f = agg_f[origin]
    origin_z = agg_z[origin]
    delta = (
        f[:, None] * (origin_z[:, None] - agg_z[None, :])
        + z[:, None] * (origin_f[:, None] - agg_f[None, :])
        - (2.0 * f * z)[:, None]
    )
    # A move to the item's own channel is not a move; mask it out.
    delta[np.arange(len(order)), origin] = -np.inf
    flat = int(np.argmax(delta))
    num_channels = agg_f.shape[0]
    rank, destination = divmod(flat, num_channels)
    best = float(delta[rank, destination])
    if not best > epsilon:
        return None
    return best, rank, destination


#: Element budget for one Δc chunk (float64 block ≈ 32 MiB).  Above
#: ``N·K`` elements the full broadcast matrix would dominate peak RSS
#: (1 GiB at N=10⁶, K=128), so the scan switches to row blocks.
CDS_DELTA_CHUNK_ELEMENTS = 1 << 22


def cds_best_move_chunked(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
    *,
    chunk_elements: int = CDS_DELTA_CHUNK_ELEMENTS,
) -> Optional[Tuple[float, int, int]]:
    """Blocked variant of :func:`cds_best_move_numpy` with bounded RSS.

    Scans the rank axis in row blocks of at most ``chunk_elements``
    matrix entries.  Each block applies the identical elementwise
    expression, and blocks combine under strict ``>``, so the global
    first-maximum tie-break (origin → position → destination) and every
    float are exactly those of the one-shot matrix.
    """
    n = len(order)
    num_channels = agg_f.shape[0]
    rows = max(1, chunk_elements // max(1, num_channels))
    best = -np.inf
    best_rank = -1
    best_destination = -1
    for start in range(0, n, rows):
        sel = order[start : start + rows]
        f = freq[sel]
        z = size[sel]
        origin = group_of[sel]
        origin_f = agg_f[origin]
        origin_z = agg_z[origin]
        delta = (
            f[:, None] * (origin_z[:, None] - agg_z[None, :])
            + z[:, None] * (origin_f[:, None] - agg_f[None, :])
            - (2.0 * f * z)[:, None]
        )
        delta[np.arange(len(sel)), origin] = -np.inf
        flat = int(np.argmax(delta))
        rank, destination = divmod(flat, num_channels)
        value = float(delta[rank, destination])
        if value > best:
            best = value
            best_rank = start + rank
            best_destination = destination
    if best_rank < 0 or not best > epsilon:
        return None
    return best, best_rank, best_destination


if HAS_NUMBA:

    @numba.njit(cache=True)
    def _cds_best_move_jit(freq, size, order, group_of, agg_f, agg_z):
        """First strict maximum of Eq. (4) over (rank, destination).

        Rank-major, destination-minor scan order — the same row-major
        order ``np.argmax`` flattens, so the tie-break matches.  The
        delta expression keeps the numpy kernel's exact association
        ``(f·(Z_p−Z_q) + z·(F_p−F_q)) − (2·f)·z`` and numba's default
        strict-IEEE mode (no fastmath, no FMA contraction) reproduces
        its floats bit-for-bit.
        """
        best = -np.inf
        best_rank = -1
        best_destination = -1
        num_channels = agg_f.shape[0]
        for rank in range(order.shape[0]):
            index = order[rank]
            f = freq[index]
            z = size[index]
            origin = group_of[index]
            origin_f = agg_f[origin]
            origin_z = agg_z[origin]
            two_fz = 2.0 * f * z
            for destination in range(num_channels):
                if destination == origin:
                    continue
                delta = (
                    f * (origin_z - agg_z[destination])
                    + z * (origin_f - agg_f[destination])
                    - two_fz
                )
                if delta > best:
                    best = delta
                    best_rank = rank
                    best_destination = destination
        return best, best_rank, best_destination

else:
    _cds_best_move_jit = None


def cds_best_move(
    freq,
    size,
    order,
    group_of,
    agg_f,
    agg_z,
    epsilon: float,
) -> Optional[Tuple[float, int, int]]:
    """Best single CDS move — dispatching Δc scan.

    Routes to the numba JIT kernel when numba is importable, to the
    blocked scan when the full ``N×K`` matrix would exceed the chunk
    budget, and to the one-shot broadcast matrix otherwise.  All three
    produce identical floats and the identical first-maximum winner, so
    the choice is purely a speed/memory trade.
    """
    if HAS_NUMBA:
        best, rank, destination = _cds_best_move_jit(
            freq, size, order, group_of, agg_f, agg_z
        )
        if rank < 0 or not best > epsilon:
            return None
        return float(best), int(rank), int(destination)
    if len(order) * agg_f.shape[0] > CDS_DELTA_CHUNK_ELEMENTS:
        return cds_best_move_chunked(
            freq, size, order, group_of, agg_f, agg_z, epsilon
        )
    return cds_best_move_numpy(
        freq, size, order, group_of, agg_f, agg_z, epsilon
    )


# ----------------------------------------------------------------------
# Partition — range-based split scan over shared prefix sums
# ----------------------------------------------------------------------
def best_split_range_numpy(pf, pz, start: int, stop: int) -> Tuple[int, float]:
    """Vectorized split scan over the half-open range ``[start, stop)``.

    ``pf`` / ``pz`` are the shared prefix-sum arrays (length N+1).
    Returns ``(offset, cost)`` with ``1 <= offset < stop - start``; the
    first minimum wins, matching the scalar strict-``<`` scan.
    """
    cut = np.arange(start + 1, stop)
    left = (pf[cut] - pf[start]) * (pz[cut] - pz[start])
    right = (pf[stop] - pf[cut]) * (pz[stop] - pz[cut])
    total = left + right
    index = int(np.argmin(total))
    return index + 1, float(total[index])


# ----------------------------------------------------------------------
# Contiguous DP — candidate-window argmin for the monotone D&C layer
# ----------------------------------------------------------------------
def dp_window_argmin_numpy(dp_prev, pf, pz, i: int, lo: int, hi: int):
    """Minimise ``dp_prev[j] + cost(j, i)`` over ``j in [lo, hi)``.

    Returns ``(j, value)`` with the first minimum winning — identical
    floats and tie-break to the quadratic oracle's inner loop.
    """
    j = np.arange(lo, hi)
    values = dp_prev[lo:hi] + (pf[i] - pf[j]) * (pz[i] - pz[j])
    k = int(np.argmin(values))
    return lo + k, float(values[k])
