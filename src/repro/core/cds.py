"""Mechanism CDS — Cost-Diminishing Selection (paper, Section 3.2).

CDS refines a given grouping to a *local optimum*: in each iteration it
evaluates the cost reduction ``Δc`` of every possible single-item move
between groups using the closed form of Eq. (4) — no move is actually
performed during evaluation — then executes the best strictly-improving
move.  It terminates when no move reduces the cost.

Per-iteration complexity is ``O(K²·N)`` pair evaluations in the paper's
formulation (each of the N items against each of the K−1 other groups,
with the scan repeated per origin group); this implementation visits each
(item, destination) pair exactly once per iteration, i.e. ``O(K·N)``
evaluations, each O(1) thanks to maintained ``(F_i, Z_i)`` aggregates.

A useful consequence of Eq. (4): moving the *last* item out of a group is
never selected, because with ``F_p = f_x`` and ``Z_p = z_x`` the delta
collapses to ``−f_x Z_q − z_x F_q < 0``.  The "keep all K channels
non-empty" invariant therefore holds automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.allocation import ChannelAllocation
from repro.core.cost import allocation_cost, move_delta
from repro.core.item import DataItem

__all__ = ["CDSMove", "CDSResult", "cds_refine"]

#: Moves whose cost reduction is below this threshold are treated as
#: zero.  Floating-point noise in the Δc formula could otherwise make the
#: loop chase meaningless 1e-17 "improvements" forever.
_IMPROVEMENT_EPSILON = 1e-12


@dataclass(frozen=True)
class CDSMove:
    """One executed move: ``item_id`` went ``origin → destination``."""

    item_id: str
    origin: int
    destination: int
    delta: float
    cost_after: float


@dataclass
class CDSResult:
    """Outcome of :func:`cds_refine`.

    Attributes
    ----------
    allocation:
        The locally optimal allocation.
    cost:
        Its total cost :math:`\\sum F_i Z_i`.
    initial_cost:
        Cost of the allocation CDS started from.
    moves:
        The executed moves in order.  ``len(moves)`` is the iteration
        count; the sequence of ``delta`` values is non-increasing in
        total cost by construction.
    converged:
        True when CDS stopped because no improving move exists; False
        only if ``max_iterations`` cut the search short.
    delta_evaluations:
        *Measured* number of ``Δc`` (item, destination) pair
        evaluations performed over the whole refinement, counted where
        the evaluations happen.  Under ``scan="full"`` every best-move
        scan costs ``N·(K−1)`` evaluations; under
        ``scan="incremental"`` only the cold index build does — each
        move afterwards re-evaluates just the dirtied cells (~``O(N +
        K²)``), so this is far below the full-scan figure.  The old
        arithmetically-derived value survives as
        :attr:`full_scan_equivalent`.
    scan_mode:
        The resolved scan mode that produced this result (``"full"``
        or ``"incremental"``).
    """

    allocation: ChannelAllocation
    cost: float
    initial_cost: float
    moves: List[CDSMove] = field(default_factory=list)
    converged: bool = True
    delta_evaluations: int = 0
    scan_mode: str = "full"

    @property
    def iterations(self) -> int:
        return len(self.moves)

    @property
    def full_scan_equivalent(self) -> int:
        """Δc evaluations a pure full-scan refinement would have paid.

        One ``N·(K−1)`` scan per executed move plus the final scan that
        proves convergence — the pre-incremental accounting, kept for
        trend continuity in benches and traces.  For ``scan="full"``
        this equals :attr:`delta_evaluations`.
        """
        scans = self.iterations + (1 if self.converged else 0)
        return scans * len(self.allocation.database) * (
            self.allocation.num_channels - 1
        )

    @property
    def improvement(self) -> float:
        """Total cost reduction achieved over the initial allocation."""
        return self.initial_cost - self.cost

    @property
    def cost_trajectory(self) -> Tuple[float, ...]:
        """Total cost before any move and after each executed move.

        Strictly decreasing by construction (every executed move has
        ``delta > ε``), which makes convergence toward the paper's
        Table 4 value directly inspectable — the golden-trace test
        asserts the paper example's trajectory ends at ``22.29``.
        """
        return (self.initial_cost,) + tuple(
            move.cost_after for move in self.moves
        )


def cds_refine(
    allocation: ChannelAllocation,
    *,
    initial: "ChannelAllocation | Sequence[Sequence[str]] | None" = None,
    max_iterations: Optional[int] = None,
    backend: str = "auto",
    scan: str = "auto",
    scan_workers: Optional[int] = None,
) -> CDSResult:
    """Refine ``allocation`` to a local optimum with mechanism CDS.

    Parameters
    ----------
    allocation:
        Any valid channel allocation (typically the output of DRP, but
        CDS accepts arbitrary starting points — e.g. a random allocation
        for the "CDS from scratch" ablation).
    initial:
        Optional warm-start seed: an allocation (or plain per-channel
        item-id lists) whose *grouping* — not its item objects — should
        be the starting point.  It may come
        from an earlier profile of the same catalogue — the grouping is
        rebased onto ``allocation.database`` before the search, so the
        drifted frequencies apply.  ``allocation`` then only supplies
        the target database; its own grouping is ignored.  The rebase
        happens once, before backend dispatch, so the python and numpy
        backends remain bitwise-identical with or without a seed.
    max_iterations:
        Optional hard cap on the number of moves.  ``None`` (default)
        runs to convergence, which Eq. (4) guarantees is finite: the
        total cost strictly decreases with every move and the number of
        distinct groupings is finite.
    backend:
        ``"python"`` — the scalar reference loop; ``"numpy"`` — one
        broadcasted N×K Δc matrix per iteration instead of ~N·K
        ``move_delta`` calls; ``"auto"`` (default) — numpy when
        available.  Both backends execute the identical move sequence
        (same floats, same first-maximum tie-break); see
        :mod:`repro.core.kernels`.
    scan:
        ``"full"`` — re-scan every ``N·(K−1)`` (item, destination)
        pair per iteration (the paper's loop); ``"incremental"`` —
        maintain the dirty-pair :class:`~repro.core.kernels.CDSPairIndex`
        so a move only re-evaluates the ~``O(N + K²)`` pairs it
        dirtied (numpy backend only); ``"auto"`` (default) — switch to
        incremental past
        :data:`~repro.core.kernels.CDS_INCREMENTAL_SCAN_CROSSOVER`
        full-scan evaluations.  Every mode executes the bitwise-
        identical move sequence — same floats, same (origin, position,
        destination) tie-break — gated by the ``oracle.cds-scan-modes``
        triple-parity check in :mod:`repro.verify`.
    scan_workers:
        Thread count for the incremental index's chunked cold scan
        (``None`` = one per core, capped).  Purely a throughput knob:
        the merged scan is deterministic for any worker count.

    Returns
    -------
    CDSResult

    Notes
    -----
    When observability is enabled (see :mod:`repro.obs`) the call emits
    a ``cds.refine`` span with the move count, Δc-evaluation count and
    the full cost trajectory, and bumps the ``cds.*`` metrics counters.
    The instrumentation reads bookkeeping CDS keeps anyway, so enabling
    it cannot change the refinement.
    """
    if initial is not None:
        allocation = ChannelAllocation.rebase(allocation.database, initial)
    resolved = kernels.resolve_backend(backend)
    num_items = len(allocation.database)
    resolved_scan = kernels.resolve_scan(
        scan, resolved, num_items, allocation.num_channels
    )
    with obs.span(
        "cds.refine",
        items=num_items,
        channels=allocation.num_channels,
        backend=resolved,
        scan=resolved_scan,
        warm_start=initial is not None,
    ) as span:
        if max_iterations is not None and max_iterations <= 0:
            # Zero move budget: no best-move scan is ever consulted, so
            # return the (rebased) input outright — no Δc evaluations,
            # no group materialisation, O(K) aggregate cost only.
            cost = allocation_cost(allocation)
            result = CDSResult(
                allocation=allocation,
                cost=cost,
                initial_cost=cost,
                moves=[],
                converged=False,
                scan_mode=resolved_scan,
            )
        elif resolved == "numpy" and resolved_scan == "incremental":
            result = _cds_refine_incremental(
                allocation,
                max_iterations=max_iterations,
                scan_workers=scan_workers,
            )
        elif resolved == "numpy":
            result = _cds_refine_numpy(allocation, max_iterations=max_iterations)
        else:
            result = _cds_refine_python(allocation, max_iterations=max_iterations)
        result.scan_mode = resolved_scan
        span.update(
            moves=result.iterations,
            delta_evaluations=result.delta_evaluations,
            full_scan_equivalent=result.full_scan_equivalent,
            converged=result.converged,
            cost_initial=result.initial_cost,
            cost_final=result.cost,
            improvement=result.improvement,
            cost_trajectory=list(result.cost_trajectory),
        )
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("cds.runs").inc()
            registry.counter("cds.moves").inc(result.iterations)
            registry.counter("cds.delta_evaluations").inc(result.delta_evaluations)
            registry.counter("cds.full_scan_equivalent").inc(
                result.full_scan_equivalent
            )
            if result.converged:
                registry.counter("cds.converged_runs").inc()
    return result


def _cds_refine_python(
    allocation: ChannelAllocation,
    *,
    max_iterations: Optional[int] = None,
) -> CDSResult:
    """The scalar reference backend of :func:`cds_refine`."""
    groups: List[List[DataItem]] = [list(group) for group in allocation.channels]
    agg_f: List[float] = [stat.frequency for stat in allocation.channel_stats]
    agg_z: List[float] = [stat.size for stat in allocation.channel_stats]
    num_channels = len(groups)
    initial_cost = allocation_cost(allocation)
    current_cost = initial_cost
    num_items = len(allocation.database)
    evaluations = 0
    moves: List[CDSMove] = []
    converged = True
    hb = obs.heartbeat("cds", rates=("delta_evaluations",))

    while True:
        if max_iterations is not None and len(moves) >= max_iterations:
            converged = False
            break
        best = _best_move(groups, agg_f, agg_z, num_channels)
        # _best_move visits every (item, destination≠origin) pair once.
        evaluations += num_items * (num_channels - 1)
        if hb is not None:
            hb.beat(
                moves=len(moves),
                cost=current_cost,
                delta_evaluations=evaluations,
            )
        if best is None:
            break
        delta, origin, position, destination = best
        item = groups[origin].pop(position)
        groups[destination].append(item)
        agg_f[origin] -= item.frequency
        agg_z[origin] -= item.size
        agg_f[destination] += item.frequency
        agg_z[destination] += item.size
        current_cost -= delta
        moves.append(
            CDSMove(
                item_id=item.item_id,
                origin=origin,
                destination=destination,
                delta=delta,
                cost_after=current_cost,
            )
        )

    if hb is not None:
        hb.flush(
            moves=len(moves), cost=current_cost, delta_evaluations=evaluations
        )
    refined = allocation.replace_channels(groups, validate=False)
    # Recompute from scratch to shed accumulated floating-point drift.
    final_cost = allocation_cost(refined)
    return CDSResult(
        allocation=refined,
        cost=final_cost,
        initial_cost=initial_cost,
        moves=moves,
        converged=converged,
        delta_evaluations=evaluations,
    )


def _best_move(
    groups: List[List[DataItem]],
    agg_f: List[float],
    agg_z: List[float],
    num_channels: int,
) -> Optional[Tuple[float, int, int, int]]:
    """Find the single move with the maximum cost reduction.

    Returns ``(delta, origin, position_in_origin, destination)`` or
    ``None`` when no move improves the cost beyond the epsilon.  Ties are
    broken by scan order (lowest origin, then item position, then lowest
    destination), matching the paper's "first maximum wins" loop.
    """
    best_delta = _IMPROVEMENT_EPSILON
    best: Optional[Tuple[float, int, int, int]] = None
    for origin in range(num_channels):
        origin_f = agg_f[origin]
        origin_z = agg_z[origin]
        for position, item in enumerate(groups[origin]):
            for destination in range(num_channels):
                if destination == origin:
                    continue
                delta = move_delta(
                    item,
                    origin_frequency=origin_f,
                    origin_size=origin_z,
                    dest_frequency=agg_f[destination],
                    dest_size=agg_z[destination],
                )
                if delta > best_delta:
                    best_delta = delta
                    best = (delta, origin, position, destination)
    return best


def _cds_refine_numpy(
    allocation: ChannelAllocation,
    *,
    max_iterations: Optional[int] = None,
) -> CDSResult:
    """The numpy backend of :func:`cds_refine`.

    Structure-of-arrays bookkeeping, end to end: the database's feature
    arrays are read in place (catalogue order), the working state is a
    channel index per item plus per-channel ``(F_i, Z_i)`` aggregate
    arrays, and the per-channel index lists mirror the scalar backend's
    mutable group lists (pop at position / append at end), so the scan
    order — and therefore the tie-break — stays identical move for
    move.  No :class:`DataItem` is ever materialised: the Δc scan, the
    aggregate updates and the final rebuild all run on catalogue
    indices (the only per-move object is the executed move's id
    string).
    """
    np = kernels.np
    database = allocation.database
    freq = database.frequencies
    size = database.sizes
    num_items = len(database)
    groups: List[List[int]] = [
        [int(i) for i in group] for group in allocation.channel_index_groups
    ]
    group_of = np.empty(num_items, dtype=np.intp)
    for channel, members in enumerate(groups):
        group_of[members] = channel
    agg_f = np.array(
        [stat.frequency for stat in allocation.channel_stats], dtype=np.float64
    )
    agg_z = np.array(
        [stat.size for stat in allocation.channel_stats], dtype=np.float64
    )
    offsets = [0] * len(groups)
    initial_cost = allocation_cost(allocation)
    current_cost = initial_cost
    num_channels = len(groups)
    evaluations = 0
    moves: List[CDSMove] = []
    converged = True
    order = np.empty(num_items, dtype=np.intp)
    hb = obs.heartbeat("cds", rates=("delta_evaluations",))

    while True:
        if max_iterations is not None and len(moves) >= max_iterations:
            converged = False
            break
        position = 0
        for channel, members in enumerate(groups):
            offsets[channel] = position
            order[position: position + len(members)] = members
            position += len(members)
        best = kernels.cds_best_move(
            freq, size, order, group_of, agg_f, agg_z, _IMPROVEMENT_EPSILON
        )
        # One full matrix per scan; the masked own-channel column is
        # not an Eq. (4) evaluation, matching the scalar count.
        evaluations += num_items * (num_channels - 1)
        if hb is not None:
            hb.beat(
                moves=len(moves),
                cost=current_cost,
                delta_evaluations=evaluations,
            )
        if best is None:
            break
        delta, rank, destination = best
        index = int(order[rank])
        origin = int(group_of[index])
        groups[origin].pop(rank - offsets[origin])
        groups[destination].append(index)
        group_of[index] = destination
        item_frequency = float(freq[index])
        item_size = float(size[index])
        agg_f[origin] -= item_frequency
        agg_z[origin] -= item_size
        agg_f[destination] += item_frequency
        agg_z[destination] += item_size
        current_cost -= delta
        moves.append(
            CDSMove(
                item_id=database.item_id_at(index),
                origin=origin,
                destination=destination,
                delta=delta,
                cost_after=current_cost,
            )
        )

    if hb is not None:
        hb.flush(
            moves=len(moves), cost=current_cost, delta_evaluations=evaluations
        )
    refined = allocation.replace_index_groups(groups)
    # Recompute from scratch to shed accumulated floating-point drift.
    final_cost = allocation_cost(refined)
    return CDSResult(
        allocation=refined,
        cost=final_cost,
        initial_cost=initial_cost,
        moves=moves,
        converged=converged,
        delta_evaluations=evaluations,
    )


def _cds_refine_incremental(
    allocation: ChannelAllocation,
    *,
    max_iterations: Optional[int] = None,
    scan_workers: Optional[int] = None,
) -> CDSResult:
    """The dirty-pair incremental scan of :func:`cds_refine`.

    Identical working state to :func:`_cds_refine_numpy` — catalogue
    feature arrays, per-channel index lists mutated pop-at-position /
    append-at-end, incrementally maintained ``(F_i, Z_i)`` aggregate
    arrays — but the per-iteration best-move search reads the
    :class:`~repro.core.kernels.CDSPairIndex` instead of rescanning
    all ``N·(K−1)`` pairs.  After a move ``o → d`` only cells with
    origin or destination in ``{o, d}`` are recomputed (the move
    changed no other cell's inputs), and the stale-cell refresh is
    deferred to the next iteration's selection so a capped run never
    pays for an update it will not read.

    Bitwise parity with the full scans holds because (a) the aggregate
    arrays receive the identical update sequence, (b) every cell
    evaluation applies the identical elementwise Δc expression to
    identical inputs, and (c) cached cells hold exactly the floats a
    fresh scan would recompute.  See docs/verification.md.
    """
    np = kernels.np
    database = allocation.database
    freq = database.frequencies
    size = database.sizes
    groups: List[List[int]] = [
        [int(i) for i in group] for group in allocation.channel_index_groups
    ]
    agg_f = np.array(
        [stat.frequency for stat in allocation.channel_stats], dtype=np.float64
    )
    agg_z = np.array(
        [stat.size for stat in allocation.channel_stats], dtype=np.float64
    )
    initial_cost = allocation_cost(allocation)
    current_cost = initial_cost
    moves: List[CDSMove] = []
    converged = True
    index = kernels.CDSPairIndex(
        freq, size, groups, agg_f, agg_z, workers=scan_workers
    )
    dirty: Optional[Tuple[int, int]] = None
    hb = obs.heartbeat("cds", rates=("delta_evaluations",))

    while True:
        if max_iterations is not None and len(moves) >= max_iterations:
            converged = False
            break
        if dirty is not None:
            index.apply_move(*dirty)
            dirty = None
        best = index.best_move(_IMPROVEMENT_EPSILON)
        if hb is not None:
            hb.beat(
                moves=len(moves),
                cost=current_cost,
                delta_evaluations=index.evaluations,
            )
        if best is None:
            break
        delta, origin, position, destination = best
        item_index = groups[origin].pop(position)
        groups[destination].append(item_index)
        item_frequency = float(freq[item_index])
        item_size = float(size[item_index])
        agg_f[origin] -= item_frequency
        agg_z[origin] -= item_size
        agg_f[destination] += item_frequency
        agg_z[destination] += item_size
        dirty = (origin, destination)
        current_cost -= delta
        moves.append(
            CDSMove(
                item_id=database.item_id_at(item_index),
                origin=origin,
                destination=destination,
                delta=delta,
                cost_after=current_cost,
            )
        )

    if hb is not None:
        hb.flush(
            moves=len(moves),
            cost=current_cost,
            delta_evaluations=index.evaluations,
        )
    refined = allocation.replace_index_groups(groups)
    # Recompute from scratch to shed accumulated floating-point drift.
    final_cost = allocation_cost(refined)
    return CDSResult(
        allocation=refined,
        cost=final_cost,
        initial_cost=initial_cost,
        moves=moves,
        converged=converged,
        delta_evaluations=index.evaluations,
        scan_mode="incremental",
    )
