"""The broadcast database ``D`` — the collection of items to disseminate.

The database owns the global invariants the paper assumes:

* item identifiers are unique,
* access frequencies form a probability distribution
  (:math:`\\sum_i \\sum_j f_j^{(i)} = 1`),
* the benefit-ratio order used by DRP is well defined.

It also exposes the derived quantities every algorithm needs (aggregate
frequency/size, items sorted by benefit ratio) so that callers never
recompute them ad hoc.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.core.item import DataItem
from repro.exceptions import InvalidDatabaseError

__all__ = ["BroadcastDatabase", "FREQUENCY_SUM_TOLERANCE"]

#: Absolute tolerance when checking that frequencies sum to one.  The
#: paper's Table 2 itself only sums to 1.0 within rounding (4 decimal
#: digits per entry), so exact equality would reject the paper's own data.
FREQUENCY_SUM_TOLERANCE = 1e-3


class BroadcastDatabase:
    """Immutable collection of :class:`DataItem` objects.

    Parameters
    ----------
    items:
        The data items.  Order is preserved (it is the "catalogue order"),
        but most algorithms operate on :meth:`sorted_by_benefit_ratio`.
    require_normalized:
        When true (default), the access frequencies must sum to 1 within
        :data:`FREQUENCY_SUM_TOLERANCE`.  Set to false for intermediate
        profiles and call :meth:`normalized` to rescale.

    Examples
    --------
    >>> db = BroadcastDatabase([
    ...     DataItem("a", 0.5, 2.0),
    ...     DataItem("b", 0.5, 1.0),
    ... ])
    >>> db.total_size
    3.0
    >>> [item.item_id for item in db.sorted_by_benefit_ratio()]
    ['b', 'a']
    """

    __slots__ = ("_items", "_by_id", "_total_frequency", "_total_size")

    def __init__(
        self,
        items: Iterable[DataItem],
        *,
        require_normalized: bool = True,
    ) -> None:
        item_list: List[DataItem] = list(items)
        if not item_list:
            raise InvalidDatabaseError("a broadcast database cannot be empty")
        by_id: Dict[str, DataItem] = {}
        for item in item_list:
            if not isinstance(item, DataItem):
                raise InvalidDatabaseError(
                    f"database entries must be DataItem, got {type(item).__name__}"
                )
            if item.item_id in by_id:
                raise InvalidDatabaseError(
                    f"duplicate item_id {item.item_id!r} in database"
                )
            by_id[item.item_id] = item
        total_frequency = math.fsum(item.frequency for item in item_list)
        if require_normalized and abs(total_frequency - 1.0) > FREQUENCY_SUM_TOLERANCE:
            raise InvalidDatabaseError(
                "access frequencies must sum to 1 "
                f"(got {total_frequency:.6f}); build with "
                "require_normalized=False and call .normalized() to rescale"
            )
        self._items: Tuple[DataItem, ...] = tuple(item_list)
        self._by_id = by_id
        self._total_frequency = total_frequency
        self._total_size = math.fsum(item.size for item in item_list)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self._items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._by_id

    def __getitem__(self, item_id: str) -> DataItem:
        try:
            return self._by_id[item_id]
        except KeyError:
            raise KeyError(f"no item {item_id!r} in database") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastDatabase):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastDatabase(n={len(self)}, total_size={self._total_size:.6g})"
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def items(self) -> Tuple[DataItem, ...]:
        """The items in catalogue order."""
        return self._items

    @property
    def item_ids(self) -> Tuple[str, ...]:
        return tuple(item.item_id for item in self._items)

    @property
    def total_frequency(self) -> float:
        """Sum of access frequencies (≈ 1 for a normalised database)."""
        return self._total_frequency

    @property
    def total_size(self) -> float:
        """Aggregate size of the whole database, :math:`\\sum z`."""
        return self._total_size

    @property
    def is_normalized(self) -> bool:
        return abs(self._total_frequency - 1.0) <= FREQUENCY_SUM_TOLERANCE

    @property
    def fixed_download_cost(self) -> float:
        """The allocation-independent term :math:`\\sum f_i z_i` of Eq. (2)."""
        return math.fsum(item.weight for item in self._items)

    def sorted_by_benefit_ratio(self) -> Tuple[DataItem, ...]:
        """Items sorted by benefit ratio ``f/z`` in descending order.

        Ties are broken by catalogue order so the sort is deterministic;
        DRP's behaviour is then reproducible for any input.
        """
        order = sorted(
            range(len(self._items)),
            key=lambda i: (-self._items[i].benefit_ratio, i),
        )
        return tuple(self._items[i] for i in order)

    def sorted_by_frequency(self) -> Tuple[DataItem, ...]:
        """Items sorted by access frequency in descending order.

        This is the order conventional (equal item size) algorithms such
        as VF^K operate on.
        """
        order = sorted(
            range(len(self._items)),
            key=lambda i: (-self._items[i].frequency, i),
        )
        return tuple(self._items[i] for i in order)

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------
    def normalized(self) -> "BroadcastDatabase":
        """Return a copy whose frequencies are rescaled to sum to 1."""
        factor = 1.0 / self._total_frequency
        return BroadcastDatabase(
            (item.scaled(frequency_factor=factor) for item in self._items),
        )

    def subset(self, item_ids: Sequence[str]) -> Tuple[DataItem, ...]:
        """Look up a sequence of items by id, preserving the given order."""
        return tuple(self[item_id] for item_id in item_ids)

    @classmethod
    def from_pairs(
        cls,
        pairs: Mapping[str, Tuple[float, float]],
        *,
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """Build a database from ``{item_id: (frequency, size)}``.

        Iteration order of the mapping defines catalogue order.
        """
        return cls(
            (
                DataItem(item_id, frequency=freq, size=size)
                for item_id, (freq, size) in pairs.items()
            ),
            require_normalized=require_normalized,
        )

    @classmethod
    def from_arrays(
        cls,
        frequencies: Sequence[float],
        sizes: Sequence[float],
        *,
        prefix: str = "d",
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """Build a database from parallel frequency/size arrays.

        Items are named ``{prefix}1 .. {prefix}N`` following the paper's
        convention.
        """
        if len(frequencies) != len(sizes):
            raise InvalidDatabaseError(
                "frequencies and sizes must have equal length "
                f"({len(frequencies)} != {len(sizes)})"
            )
        return cls(
            (
                DataItem(f"{prefix}{i + 1}", frequency=float(f), size=float(z))
                for i, (f, z) in enumerate(zip(frequencies, sizes))
            ),
            require_normalized=require_normalized,
        )
