"""The broadcast database ``D`` — the collection of items to disseminate.

The database owns the global invariants the paper assumes:

* item identifiers are unique,
* access frequencies form a probability distribution
  (:math:`\\sum_i \\sum_j f_j^{(i)} = 1`),
* the benefit-ratio order used by DRP is well defined.

It also exposes the derived quantities every algorithm needs (aggregate
frequency/size, items sorted by benefit ratio) so that callers never
recompute them ad hoc.

Storage model (structure of arrays)
-----------------------------------
The canonical state is **array-resident**: two contiguous float64
arrays (``frequencies``, ``sizes``) plus the id metadata.  Per-item
:class:`DataItem` objects and the id→index map are *views* created
lazily the first time an object-level API (``items``, ``__getitem__``,
``subset`` …) is touched, then cached.  Algorithm hot paths (DRP, CDS,
the contiguous DP, the incremental engine) read the arrays directly and
never materialise items, which is what lets a single database scale to
millions of items.  Databases built from explicit :class:`DataItem`
objects keep those exact objects as the (pre-populated) view cache, so
the object-level API is unchanged — including identity.

Construction parity: building from items and building from arrays with
the same floats yields equal databases (same totals, same order, same
hash) — ``repro verify`` carries a differential oracle for it.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.item import DataItem
from repro.core.kernels import HAS_NUMPY, np
from repro.exceptions import InvalidDatabaseError, InvalidItemError

__all__ = ["BroadcastDatabase", "FREQUENCY_SUM_TOLERANCE"]

#: Absolute tolerance when checking that frequencies sum to one.  The
#: paper's Table 2 itself only sums to 1.0 within rounding (4 decimal
#: digits per entry), so exact equality would reject the paper's own data.
FREQUENCY_SUM_TOLERANCE = 1e-3


def _record_materialization(count: int) -> None:
    """Bump the ``core.items_materialized`` counter when metrics are on."""
    from repro import obs

    registry = obs.get_metrics()
    if registry.enabled:
        registry.counter("core.items_materialized").inc(count)


class BroadcastDatabase:
    """Immutable collection of broadcast items (array-resident).

    Parameters
    ----------
    items:
        The data items.  Order is preserved (it is the "catalogue order"),
        but most algorithms operate on :meth:`sorted_by_benefit_ratio`.
    require_normalized:
        When true (default), the access frequencies must sum to 1 within
        :data:`FREQUENCY_SUM_TOLERANCE`.  Set to false for intermediate
        profiles and call :meth:`normalized` to rescale.

    Examples
    --------
    >>> db = BroadcastDatabase([
    ...     DataItem("a", 0.5, 2.0),
    ...     DataItem("b", 0.5, 1.0),
    ... ])
    >>> db.total_size
    3.0
    >>> [item.item_id for item in db.sorted_by_benefit_ratio()]
    ['b', 'a']
    """

    __slots__ = (
        "_freq",
        "_size",
        "_ids",
        "_id_prefix",
        "_labels",
        "_total_frequency",
        "_total_size",
        # lazy caches (never pickled)
        "_items",
        "_index_by_id",
        "_br_order",
    )

    def __init__(
        self,
        items: Iterable[DataItem],
        *,
        require_normalized: bool = True,
    ) -> None:
        item_list: List[DataItem] = list(items)
        if not item_list:
            raise InvalidDatabaseError("a broadcast database cannot be empty")
        index_by_id: Dict[str, int] = {}
        for index, item in enumerate(item_list):
            if not isinstance(item, DataItem):
                raise InvalidDatabaseError(
                    f"database entries must be DataItem, got {type(item).__name__}"
                )
            if item.item_id in index_by_id:
                raise InvalidDatabaseError(
                    f"duplicate item_id {item.item_id!r} in database"
                )
            index_by_id[item.item_id] = index
        freq = [item.frequency for item in item_list]
        size = [item.size for item in item_list]
        total_frequency = math.fsum(freq)
        if require_normalized and abs(total_frequency - 1.0) > FREQUENCY_SUM_TOLERANCE:
            raise InvalidDatabaseError(
                "access frequencies must sum to 1 "
                f"(got {total_frequency:.6f}); build with "
                "require_normalized=False and call .normalized() to rescale"
            )
        self._freq = self._freeze(freq)
        self._size = self._freeze(size)
        self._ids: Optional[Tuple[str, ...]] = tuple(
            item.item_id for item in item_list
        )
        self._id_prefix: Optional[str] = None
        labels = tuple(item.label for item in item_list)
        self._labels: Optional[Tuple[Optional[str], ...]] = (
            labels if any(label is not None for label in labels) else None
        )
        self._total_frequency = total_frequency
        self._total_size = math.fsum(size)
        # The given objects *are* the item view — identity preserved.
        self._items: Optional[Tuple[DataItem, ...]] = tuple(item_list)
        self._index_by_id: Optional[Dict[str, int]] = index_by_id
        self._br_order = None

    @staticmethod
    def _freeze(values: Sequence[float]):
        """Per-item feature storage: a read-only float64 array (or a
        plain list when numpy is unavailable)."""
        if HAS_NUMPY:
            array = np.array(values, dtype=np.float64)
            array.setflags(write=False)
            return array
        return list(map(float, values))  # pragma: no cover - numpy baked in

    # ------------------------------------------------------------------
    # Array-native constructor
    # ------------------------------------------------------------------
    @classmethod
    def from_soa(
        cls,
        frequencies: Sequence[float],
        sizes: Sequence[float],
        *,
        ids: Optional[Sequence[str]] = None,
        id_prefix: str = "d",
        labels: Optional[Sequence[Optional[str]]] = None,
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """Build a database directly from feature arrays (zero items).

        The structure-of-arrays twin of ``__init__``: validates the
        per-item invariants (finite, positive) vectorized, never
        constructs a :class:`DataItem`.  When ``ids`` is omitted, item
        ids are *virtual* — ``{id_prefix}{i+1}`` — and only rendered to
        strings on demand (:meth:`item_id_at`, ``item_ids``).

        Equal floats produce a database equal (and hash-equal) to the
        object-built one; the ``database-construction`` verify oracle
        pins that parity.
        """
        if len(frequencies) != len(sizes):
            raise InvalidDatabaseError(
                "frequencies and sizes must have equal length "
                f"({len(frequencies)} != {len(sizes)})"
            )
        if len(frequencies) == 0:
            raise InvalidDatabaseError("a broadcast database cannot be empty")
        if ids is not None and len(ids) != len(frequencies):
            raise InvalidDatabaseError(
                f"ids length {len(ids)} != feature length {len(frequencies)}"
            )
        if labels is not None and len(labels) != len(frequencies):
            raise InvalidDatabaseError(
                f"labels length {len(labels)} != feature length {len(frequencies)}"
            )
        self = object.__new__(cls)
        self._freq = cls._freeze(frequencies)
        self._size = cls._freeze(sizes)
        self._ids = tuple(ids) if ids is not None else None
        self._id_prefix = id_prefix if ids is None else None
        self._labels = tuple(labels) if labels is not None else None
        self._items = None
        self._index_by_id = None
        self._br_order = None
        self._validate_soa(require_normalized)
        return self

    def _validate_soa(self, require_normalized: bool) -> None:
        if HAS_NUMPY:
            freq, size = self._freq, self._size
            bad = ~(np.isfinite(freq) & (freq > 0.0))
            bad |= ~(np.isfinite(size) & (size > 0.0))
            if bool(bad.any()):
                index = int(np.argmax(bad))
                raise InvalidItemError(
                    f"features of {self.item_id_at(index)!r} must be finite "
                    f"and > 0, got frequency={float(freq[index])!r} "
                    f"size={float(size[index])!r}"
                )
            freq_list = freq.tolist()
            size_list = size.tolist()
        else:  # pragma: no cover - numpy baked into the image
            freq_list, size_list = self._freq, self._size
            for index, (f, z) in enumerate(zip(freq_list, size_list)):
                if not (math.isfinite(f) and f > 0.0 and math.isfinite(z) and z > 0.0):
                    raise InvalidItemError(
                        f"features of {self.item_id_at(index)!r} must be "
                        f"finite and > 0, got frequency={f!r} size={z!r}"
                    )
        if self._ids is not None:
            seen: Dict[str, int] = {}
            for item_id in self._ids:
                if item_id in seen:
                    raise InvalidDatabaseError(
                        f"duplicate item_id {item_id!r} in database"
                    )
                seen[item_id] = 1
        total_frequency = math.fsum(freq_list)
        if require_normalized and abs(total_frequency - 1.0) > FREQUENCY_SUM_TOLERANCE:
            raise InvalidDatabaseError(
                "access frequencies must sum to 1 "
                f"(got {total_frequency:.6f}); build with "
                "require_normalized=False and call .normalized() to rescale"
            )
        self._total_frequency = total_frequency
        self._total_size = math.fsum(size_list)

    # ------------------------------------------------------------------
    # Array accessors (the hot-path API)
    # ------------------------------------------------------------------
    @property
    def frequencies(self):
        """Per-item access frequencies in catalogue order.

        A read-only float64 array (a list when numpy is unavailable).
        The exact floats the item view exposes — no copies, no rounding.
        """
        return self._freq

    @property
    def sizes(self):
        """Per-item sizes in catalogue order (read-only float64 array)."""
        return self._size

    def item_id_at(self, index: int) -> str:
        """The id of catalogue position ``index`` without materialising
        the whole id tuple (virtual ids render on demand)."""
        if self._ids is not None:
            return self._ids[index]
        if not -len(self) <= index < len(self):
            raise IndexError(index)
        if index < 0:
            index += len(self)
        return f"{self._id_prefix}{index + 1}"

    def index_of(self, item_id: str) -> int:
        """Catalogue position of ``item_id`` (KeyError when absent)."""
        index_by_id = self._id_index()
        try:
            return index_by_id[item_id]
        except KeyError:
            raise KeyError(f"no item {item_id!r} in database") from None

    def benefit_ratio_order(self):
        """Catalogue indices sorted by descending benefit ratio ``f/z``.

        Ties break by catalogue order (stable sort), exactly matching
        :meth:`sorted_by_benefit_ratio`; the result is cached.  Returns
        an intp array (a list of ints without numpy).
        """
        if self._br_order is None:
            if HAS_NUMPY:
                ratios = self._freq / self._size
                order = np.argsort(-ratios, kind="stable")
                order.setflags(write=False)
            else:  # pragma: no cover - numpy baked in
                ratios = [f / z for f, z in zip(self._freq, self._size)]
                order = sorted(range(len(ratios)), key=lambda i: (-ratios[i], i))
            self._br_order = order
        return self._br_order

    def frequency_order(self):
        """Catalogue indices sorted by descending access frequency."""
        if HAS_NUMPY:
            return np.argsort(
                -np.asarray(self._freq, dtype=np.float64), kind="stable"
            )
        return sorted(  # pragma: no cover - numpy baked in
            range(len(self._freq)), key=lambda i: (-self._freq[i], i)
        )

    def with_frequencies(
        self,
        frequencies: Sequence[float],
        *,
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """A copy with replaced frequencies (ids, sizes, labels shared).

        The array-native profile update the incremental engine uses —
        no per-item objects are built.
        """
        if len(frequencies) != len(self):
            raise InvalidDatabaseError(
                f"frequencies length {len(frequencies)} != database size "
                f"{len(self)}"
            )
        clone = object.__new__(BroadcastDatabase)
        clone._freq = self._freeze(frequencies)
        clone._size = self._size
        clone._ids = self._ids
        clone._id_prefix = self._id_prefix
        clone._labels = self._labels
        clone._items = None
        clone._index_by_id = self._index_by_id
        clone._br_order = None
        clone._validate_soa(require_normalized)
        return clone

    # ------------------------------------------------------------------
    # Lazy view materialisation
    # ------------------------------------------------------------------
    def _materialize_items(self) -> Tuple[DataItem, ...]:
        freq = self._freq.tolist() if HAS_NUMPY else self._freq
        size = self._size.tolist() if HAS_NUMPY else self._size
        labels = self._labels
        items = tuple(
            DataItem(
                self.item_id_at(i),
                freq[i],
                size[i],
                label=labels[i] if labels is not None else None,
            )
            for i in range(len(freq))
        )
        _record_materialization(len(items))
        return items

    def _id_index(self) -> Dict[str, int]:
        if self._index_by_id is None:
            self._index_by_id = {
                self.item_id_at(i): i for i in range(len(self))
            }
        return self._index_by_id

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._freq)

    def __iter__(self) -> Iterator[DataItem]:
        return iter(self.items)

    def __contains__(self, item_id: object) -> bool:
        return item_id in self._id_index()

    def __getitem__(self, item_id: str) -> DataItem:
        return self.items[self.index_of(item_id)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BroadcastDatabase):
            return NotImplemented
        if self is other:
            return True
        if len(self) != len(other):
            return False
        if HAS_NUMPY:
            if not (
                np.array_equal(self._freq, other._freq)
                and np.array_equal(self._size, other._size)
            ):
                return False
        else:  # pragma: no cover - numpy baked in
            if self._freq != other._freq or self._size != other._size:
                return False
        if (
            self._ids is None
            and other._ids is None
            and self._id_prefix == other._id_prefix
        ):
            return True
        return self.item_ids == other.item_ids

    def __hash__(self) -> int:
        if HAS_NUMPY:
            features = (self._freq.tobytes(), self._size.tobytes())
        else:  # pragma: no cover - numpy baked in
            features = (tuple(self._freq), tuple(self._size))
        return hash((self.item_ids, features))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastDatabase(n={len(self)}, total_size={self._total_size:.6g})"
        )

    # ------------------------------------------------------------------
    # Pickling — ship the arrays, drop the lazy caches
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "freq": self._freq,
            "size": self._size,
            "ids": self._ids,
            "id_prefix": self._id_prefix,
            "labels": self._labels,
            "total_frequency": self._total_frequency,
            "total_size": self._total_size,
        }

    def __setstate__(self, state) -> None:
        self._freq = state["freq"]
        self._size = state["size"]
        if HAS_NUMPY and hasattr(self._freq, "setflags"):
            self._freq.setflags(write=False)
            self._size.setflags(write=False)
        self._ids = state["ids"]
        self._id_prefix = state["id_prefix"]
        self._labels = state["labels"]
        self._total_frequency = state["total_frequency"]
        self._total_size = state["total_size"]
        self._items = None
        self._index_by_id = None
        self._br_order = None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def items(self) -> Tuple[DataItem, ...]:
        """The items in catalogue order (materialised lazily, cached)."""
        if self._items is None:
            self._items = self._materialize_items()
        return self._items

    @property
    def item_ids(self) -> Tuple[str, ...]:
        if self._ids is None:
            self._ids = tuple(
                f"{self._id_prefix}{i + 1}" for i in range(len(self))
            )
        return self._ids

    @property
    def total_frequency(self) -> float:
        """Sum of access frequencies (≈ 1 for a normalised database)."""
        return self._total_frequency

    @property
    def total_size(self) -> float:
        """Aggregate size of the whole database, :math:`\\sum z`."""
        return self._total_size

    @property
    def is_normalized(self) -> bool:
        return abs(self._total_frequency - 1.0) <= FREQUENCY_SUM_TOLERANCE

    @property
    def fixed_download_cost(self) -> float:
        """The allocation-independent term :math:`\\sum f_i z_i` of Eq. (2)."""
        if HAS_NUMPY:
            return math.fsum((self._freq * self._size).tolist())
        return math.fsum(  # pragma: no cover - numpy baked in
            f * z for f, z in zip(self._freq, self._size)
        )

    def sorted_by_benefit_ratio(self) -> Tuple[DataItem, ...]:
        """Items sorted by benefit ratio ``f/z`` in descending order.

        Ties are broken by catalogue order so the sort is deterministic;
        DRP's behaviour is then reproducible for any input.
        """
        items = self.items
        return tuple(items[int(i)] for i in self.benefit_ratio_order())

    def sorted_by_frequency(self) -> Tuple[DataItem, ...]:
        """Items sorted by access frequency in descending order.

        This is the order conventional (equal item size) algorithms such
        as VF^K operate on.
        """
        items = self.items
        return tuple(items[int(i)] for i in self.frequency_order())

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------
    def normalized(self) -> "BroadcastDatabase":
        """Return a copy whose frequencies are rescaled to sum to 1."""
        factor = 1.0 / self._total_frequency
        if HAS_NUMPY:
            rescaled = self._freq * factor
        else:  # pragma: no cover - numpy baked in
            rescaled = [f * factor for f in self._freq]
        return self.with_frequencies(rescaled)

    def subset(self, item_ids: Sequence[str]) -> Tuple[DataItem, ...]:
        """Look up a sequence of items by id, preserving the given order."""
        return tuple(self[item_id] for item_id in item_ids)

    @classmethod
    def from_pairs(
        cls,
        pairs: Mapping[str, Tuple[float, float]],
        *,
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """Build a database from ``{item_id: (frequency, size)}``.

        Iteration order of the mapping defines catalogue order.
        """
        return cls(
            (
                DataItem(item_id, frequency=freq, size=size)
                for item_id, (freq, size) in pairs.items()
            ),
            require_normalized=require_normalized,
        )

    @classmethod
    def from_arrays(
        cls,
        frequencies: Sequence[float],
        sizes: Sequence[float],
        *,
        prefix: str = "d",
        require_normalized: bool = True,
    ) -> "BroadcastDatabase":
        """Build a database from parallel frequency/size arrays.

        Items are named ``{prefix}1 .. {prefix}N`` following the paper's
        convention.  Array-resident: no per-item objects are created
        until an object-level accessor is touched.
        """
        return cls.from_soa(
            frequencies,
            sizes,
            id_prefix=prefix,
            require_normalized=require_normalized,
        )
