"""Allocator interface and the paper's two-step DRP-CDS scheduler.

Every channel-allocation algorithm in this repository — the paper's
DRP/DRP-CDS, the VF^K and GOPT comparators, the simple baselines and the
exact solvers — implements the :class:`Allocator` interface, so the
experiment harness, the simulator and the CLI can treat them uniformly.

The paper's proposal is the composition *DRP for rough allocation, CDS
for fine tuning* (:class:`DRPCDSAllocator`); :class:`DRPAllocator` exposes
the rough step alone, which the paper's Figures 2–5 also plot.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import (
    DEFAULT_BANDWIDTH,
    allocation_cost,
    average_waiting_time,
)
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.incremental import DEFAULT_REGRESSION_GUARD, warm_start_refine

__all__ = [
    "AllocationOutcome",
    "Allocator",
    "DRPAllocator",
    "DRPCDSAllocator",
    "CDSOnlyAllocator",
    "register_allocator",
    "make_allocator",
    "available_allocators",
]


@dataclass
class AllocationOutcome:
    """The result of running one allocator on one problem instance.

    Attributes
    ----------
    allocation:
        The channel allocation produced.
    cost:
        Total cost :math:`\\sum F_i Z_i` (Eq. 3).
    elapsed_seconds:
        Wall-clock time of the ``allocate`` call, measured with
        :func:`time.perf_counter`.  This is the quantity the paper's
        Figures 6–7 (execution time) report.
    algorithm:
        Name of the producing allocator.
    metadata:
        Algorithm-specific extras (iteration counts, GA generations, ...).
    """

    allocation: ChannelAllocation
    cost: float
    elapsed_seconds: float
    algorithm: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    def waiting_time(self, bandwidth: float = DEFAULT_BANDWIDTH) -> float:
        """Average waiting time :math:`W_b` of the allocation (Eq. 2)."""
        return average_waiting_time(self.allocation, bandwidth=bandwidth)


class Allocator(ABC):
    """Interface of every channel-allocation algorithm.

    Subclasses implement :meth:`_allocate`; the public :meth:`allocate`
    adds timing and consistent outcome packaging.  Algorithms that can
    exploit a previous allocation as a warm-start seed set
    :attr:`supports_warm_start` and implement :meth:`_allocate_warm`;
    every other algorithm silently ignores a supplied seed, so callers
    (the sweep machinery) can pass seeds unconditionally.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: True for algorithms implementing :meth:`_allocate_warm`.
    supports_warm_start: bool = False

    @abstractmethod
    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        """Produce an allocation (subclass hook)."""

    def _allocate_warm(
        self,
        database: BroadcastDatabase,
        num_channels: int,
        initial: Any,
    ) -> ChannelAllocation:
        """Warm-started variant (hook for ``supports_warm_start`` subclasses)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support warm starts"
        )

    def allocate(
        self,
        database: BroadcastDatabase,
        num_channels: int,
        *,
        initial: Any = None,
    ) -> AllocationOutcome:
        """Run the algorithm and return a timed, packaged outcome.

        ``initial`` is an optional warm-start seed — a previous
        :class:`ChannelAllocation`, a
        :class:`~repro.core.incremental.CompactAllocation` or plain
        per-channel id lists over the same catalogue.  Used only when
        the algorithm :attr:`supports_warm_start`; ignored otherwise.
        """
        self._last_metadata: Dict[str, Any] = {}
        start = time.perf_counter()
        if initial is not None and self.supports_warm_start:
            allocation = self._allocate_warm(database, num_channels, initial)
        else:
            allocation = self._allocate(database, num_channels)
        elapsed = time.perf_counter() - start
        return AllocationOutcome(
            allocation=allocation,
            cost=allocation_cost(allocation),
            elapsed_seconds=elapsed,
            algorithm=self.name,
            metadata=dict(self._last_metadata),
        )

    def _note(self, **metadata: Any) -> None:
        """Record metadata for the outcome of the current ``allocate``."""
        self._last_metadata.update(metadata)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DRPAllocator(Allocator):
    """Algorithm DRP alone — the paper's rough allocation step."""

    name = "drp"

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        result = drp_allocate(database, num_channels)
        self._note(
            drp_iterations=result.iterations,
            drp_splits_evaluated=result.splits_evaluated,
            drp_heap_pushes=result.heap_pushes,
            drp_heap_pops=result.heap_pops,
        )
        return result.allocation


class DRPCDSAllocator(Allocator):
    """The paper's proposal: DRP rough allocation + CDS fine tuning.

    Also the only paper algorithm with a warm-start path: given a
    previous allocation over the same catalogue it re-seeds CDS from it
    (guarded by ``regression_guard`` — see
    :func:`repro.core.incremental.warm_start_refine`) instead of
    running CDS from a fresh DRP seed.
    """

    name = "drp-cds"
    supports_warm_start = True

    def __init__(
        self,
        *,
        max_cds_iterations: Optional[int] = None,
        regression_guard: Optional[float] = DEFAULT_REGRESSION_GUARD,
    ) -> None:
        self._max_cds_iterations = max_cds_iterations
        self._regression_guard = regression_guard

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        rough = drp_allocate(database, num_channels)
        refined = cds_refine(
            rough.allocation, max_iterations=self._max_cds_iterations
        )
        self._note(
            drp_iterations=rough.iterations,
            drp_cost=rough.cost,
            drp_splits_evaluated=rough.splits_evaluated,
            drp_heap_pushes=rough.heap_pushes,
            drp_heap_pops=rough.heap_pops,
            cds_moves=refined.iterations,
            cds_converged=refined.converged,
            cds_improvement=refined.improvement,
            cds_delta_evaluations=refined.delta_evaluations,
        )
        return refined.allocation

    def _allocate_warm(
        self,
        database: BroadcastDatabase,
        num_channels: int,
        initial: Any,
    ) -> ChannelAllocation:
        result = warm_start_refine(
            database,
            num_channels,
            initial,
            regression_guard=self._regression_guard,
            max_iterations=self._max_cds_iterations,
        )
        self._note(
            warm_start=True,
            warm_mode=result.mode,
            warm_moves=result.warm_moves,
            cds_moves=result.warm_moves or result.cold_moves,
            warm_fallback=result.mode == "fallback",
            warm_cost=result.warm_cost,
            cold_estimate=result.cold_estimate,
        )
        return result.allocation


class CDSOnlyAllocator(Allocator):
    """CDS started from a naive seed — an ablation, not a paper algorithm.

    Seeds CDS with a round-robin allocation over the benefit-ratio order.
    Used to measure how much of DRP-CDS's quality comes from the DRP seed
    versus the local search itself.
    """

    name = "cds-only"

    def __init__(self, *, max_cds_iterations: Optional[int] = None) -> None:
        self._max_cds_iterations = max_cds_iterations

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        ordered = database.sorted_by_benefit_ratio()
        groups = [
            list(ordered[channel::num_channels]) for channel in range(num_channels)
        ]
        seed = ChannelAllocation(database, groups)
        refined = cds_refine(seed, max_iterations=self._max_cds_iterations)
        self._note(
            cds_moves=refined.iterations,
            cds_converged=refined.converged,
            cds_improvement=refined.improvement,
            cds_delta_evaluations=refined.delta_evaluations,
        )
        return refined.allocation


# ----------------------------------------------------------------------
# Allocator registry — lets experiments and the CLI name algorithms.
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], Allocator]] = {}


def register_allocator(name: str, factory: Callable[[], Allocator]) -> None:
    """Register an allocator factory under ``name``.

    Re-registering a name overwrites the previous factory; the baselines
    package registers its algorithms on import.
    """
    _REGISTRY[name] = factory


def make_allocator(name: str) -> Allocator:
    """Instantiate a registered allocator by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown allocator {name!r}; registered: {known}"
        ) from None
    return factory()


def available_allocators() -> Dict[str, Callable[[], Allocator]]:
    """A copy of the current registry."""
    return dict(_REGISTRY)


register_allocator("drp", DRPAllocator)
register_allocator("drp-cds", DRPCDSAllocator)
register_allocator("cds-only", CDSOnlyAllocator)
