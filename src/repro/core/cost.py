"""The analytical cost model of diverse data broadcasting.

Implements every formula of the paper's Section 2:

* Eq. (1) — waiting time of one item on its channel
  (probe half-cycle plus download time),
* the per-channel average waiting time :math:`W^{(i)}`,
* Eq. (2) — the program-wide average waiting time :math:`W_b`,
* Eq. (3) — the allocation-dependent *cost function*
  :math:`cost = \\sum_i F_i Z_i`, and
* Eq. (4) — the closed-form cost change :math:`\\Delta c` of moving one
  item between channels, used by mechanism CDS.

The relationship the whole paper rests on::

    W_b = cost / (2 b)  +  fixed_download_cost / b

Only the first term depends on the allocation, so minimising ``cost``
minimises ``W_b``.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.item import DataItem
from repro.exceptions import InvalidAllocationError

__all__ = [
    "DEFAULT_BANDWIDTH",
    "group_cost",
    "group_aggregates",
    "allocation_cost",
    "soa_allocation_cost",
    "channel_costs",
    "item_waiting_time",
    "channel_waiting_time",
    "average_waiting_time",
    "waiting_time_from_cost",
    "move_delta",
]

#: Channel bandwidth used throughout the paper's evaluation
#: (Table 5: 10 size units per second).
DEFAULT_BANDWIDTH = 10.0

#: Above this channel size the membership check in
#: :func:`item_waiting_time` builds a set instead of scanning linearly;
#: below it the scan is cheaper than the set construction.
_MEMBERSHIP_SCAN_LIMIT = 64


def _check_bandwidth(bandwidth: float) -> None:
    if not (isinstance(bandwidth, (int, float)) and bandwidth > 0):
        raise InvalidAllocationError(
            f"bandwidth must be a positive number, got {bandwidth!r}"
        )


# ----------------------------------------------------------------------
# Group-level quantities (work on any iterable of items)
# ----------------------------------------------------------------------
def group_aggregates(items: Iterable[DataItem]) -> Tuple[float, float]:
    """Aggregate frequency and size ``(F, Z)`` of an item group.

    These are Definitions 3 and 4 of the paper.
    """
    freq_terms: List[float] = []
    size_terms: List[float] = []
    for item in items:
        freq_terms.append(item.frequency)
        size_terms.append(item.size)
    return math.fsum(freq_terms), math.fsum(size_terms)


def group_cost(items: Iterable[DataItem]) -> float:
    """Cost of a single group, :math:`cost(D_i) = F_i \\cdot Z_i`.

    Definition 1 of the paper.  The cost of an empty group is zero.
    """
    frequency, size = group_aggregates(items)
    return frequency * size


# ----------------------------------------------------------------------
# Allocation-level quantities
# ----------------------------------------------------------------------
def channel_costs(allocation: ChannelAllocation) -> List[float]:
    """Per-channel costs :math:`F_i Z_i` of an allocation."""
    return [stat.cost for stat in allocation.channel_stats]


def allocation_cost(allocation: ChannelAllocation) -> float:
    """Total cost of an allocation, Eq. (3): :math:`\\sum_i F_i Z_i`."""
    return math.fsum(channel_costs(allocation))


def soa_allocation_cost(frequencies, sizes, index_groups) -> float:
    """Eq. (3) straight from feature arrays and catalogue-index groups.

    The array-resident twin of :func:`allocation_cost` for callers that
    hold a grouping as index arrays rather than a validated
    :class:`ChannelAllocation` (benchmarks, differential oracles).  Uses
    the same exact ``math.fsum`` accumulation in group item order, so it
    returns the identical float.
    """
    costs: List[float] = []
    for group in index_groups:
        if len(group) == 0:
            costs.append(0.0)
            continue
        frequency = math.fsum(frequencies[group].tolist())
        size = math.fsum(sizes[group].tolist())
        costs.append(frequency * size)
    return math.fsum(costs)


# ----------------------------------------------------------------------
# Waiting times
# ----------------------------------------------------------------------
def item_waiting_time(
    item: DataItem,
    channel_items: Sequence[DataItem],
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """Waiting time of one item on its channel, Eq. (1).

    ``W_j^(i) = (Σ_j z_j^(i)) / (2b) + z_j^(i) / b`` — half the broadcast
    cycle (expected probe time for a uniformly random tune-in) plus the
    item's own download time.

    Raises
    ------
    InvalidAllocationError
        If the item is not a member of ``channel_items``.
    """
    _check_bandwidth(bandwidth)
    if len(channel_items) > _MEMBERSHIP_SCAN_LIMIT:
        member_ids = {member.item_id for member in channel_items}
        on_channel = item.item_id in member_ids
    else:
        on_channel = any(
            member.item_id == item.item_id for member in channel_items
        )
    if not on_channel:
        raise InvalidAllocationError(
            f"item {item.item_id!r} is not on the given channel"
        )
    cycle_size = math.fsum(member.size for member in channel_items)
    return cycle_size / (2.0 * bandwidth) + item.size / bandwidth


def channel_waiting_time(
    channel_items: Sequence[DataItem],
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """Frequency-weighted average waiting time :math:`W^{(i)}` of a channel.

    ``W^(i) = Z_i / (2b) + (Σ f_j z_j) / (b F_i)`` — the paper derives this
    by weighting Eq. (1) by the (renormalised) access frequencies of the
    channel's items.
    """
    _check_bandwidth(bandwidth)
    if not channel_items:
        raise InvalidAllocationError(
            "waiting time of an empty channel is undefined"
        )
    frequency, size = group_aggregates(channel_items)
    if frequency <= 0.0:
        raise InvalidAllocationError(
            "waiting time is undefined for a channel whose aggregate "
            f"frequency is {frequency}: no client ever tunes in, so the "
            "frequency-weighted average has no meaning"
        )
    weighted_download = math.fsum(item.weight for item in channel_items)
    return size / (2.0 * bandwidth) + weighted_download / (bandwidth * frequency)


def average_waiting_time(
    allocation: ChannelAllocation,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """Program-wide average waiting time :math:`W_b`, Eq. (2).

    ``W_b = E[W^(i)] = Σ_i F_i W^(i)`` — the per-channel averages weighted
    by the probability that a request lands on each channel.  Expands to::

        W_b = (1/2b) Σ_i F_i Z_i + (1/b) Σ_i Σ_j f_j^(i) z_j^(i)
    """
    _check_bandwidth(bandwidth)
    probe = allocation_cost(allocation) / (2.0 * bandwidth)
    download = allocation.database.fixed_download_cost / bandwidth
    return probe + download


def waiting_time_from_cost(
    cost: float,
    fixed_download_cost: float,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """Convert an Eq.-(3) cost into an Eq.-(2) waiting time.

    Useful when an algorithm tracks only the allocation-dependent cost
    and the caller wants the physical metric the paper plots.
    """
    _check_bandwidth(bandwidth)
    return cost / (2.0 * bandwidth) + fixed_download_cost / bandwidth


# ----------------------------------------------------------------------
# Move evaluation (mechanism CDS)
# ----------------------------------------------------------------------
def move_delta(
    item: DataItem,
    origin_frequency: float,
    origin_size: float,
    dest_frequency: float,
    dest_size: float,
) -> float:
    """Cost reduction :math:`\\Delta c` of moving ``item``, Eq. (4).

    ``Δc = f_x (Z_p − Z_q) + z_x (F_p − F_q) − 2 f_x z_x`` where
    ``(F_p, Z_p)`` are the aggregates of the origin group *including* the
    item and ``(F_q, Z_q)`` those of the destination group excluding it.
    Positive values mean the move lowers the total cost.
    """
    return (
        item.frequency * (origin_size - dest_size)
        + item.size * (origin_frequency - dest_frequency)
        - 2.0 * item.frequency * item.size
    )
