"""Core of the reproduction: data model, cost model, DRP and CDS.

This subpackage implements the paper's primary contribution — the
analytical model of diverse data broadcasting (Section 2) and the
DRP/CDS channel-allocation scheme (Section 3).
"""

from repro.core.allocation import ChannelAllocation, ChannelStats
from repro.core.cds import CDSMove, CDSResult, cds_refine
from repro.core.cost import (
    DEFAULT_BANDWIDTH,
    allocation_cost,
    average_waiting_time,
    channel_costs,
    channel_waiting_time,
    group_aggregates,
    group_cost,
    item_waiting_time,
    move_delta,
    waiting_time_from_cost,
)
from repro.core.database import BroadcastDatabase
from repro.core.drp import DRPResult, DRPSnapshot, drp_allocate
from repro.core.hetero import (
    HeteroCDSResult,
    HeteroDRPCDSAllocator,
    assign_groups_to_bandwidths,
    channel_load,
    hetero_cds_refine,
    hetero_move_delta,
    hetero_waiting_time,
)
from repro.core.incremental import (
    DEFAULT_REGRESSION_GUARD,
    AllocationCache,
    CompactAllocation,
    IncrementalAllocator,
    IncrementalStats,
    WarmStartResult,
    database_fingerprint,
    insert_item,
    remove_item,
    update_frequency,
    warm_start_refine,
    workload_fingerprint,
)
from repro.core.item import DataItem
from repro.core.kernels import BACKENDS, HAS_NUMPY, resolve_backend
from repro.core.partition import (
    DP_METHODS,
    PrefixSums,
    best_split,
    best_split_in,
    contiguous_optimal,
    split_costs,
)
from repro.core.scheduler import (
    AllocationOutcome,
    Allocator,
    CDSOnlyAllocator,
    DRPAllocator,
    DRPCDSAllocator,
    available_allocators,
    make_allocator,
    register_allocator,
)

__all__ = [
    "DataItem",
    "BroadcastDatabase",
    "ChannelAllocation",
    "ChannelStats",
    "DEFAULT_BANDWIDTH",
    "group_cost",
    "group_aggregates",
    "allocation_cost",
    "channel_costs",
    "item_waiting_time",
    "channel_waiting_time",
    "average_waiting_time",
    "waiting_time_from_cost",
    "move_delta",
    "PrefixSums",
    "best_split",
    "best_split_in",
    "split_costs",
    "contiguous_optimal",
    "DP_METHODS",
    "BACKENDS",
    "HAS_NUMPY",
    "resolve_backend",
    "drp_allocate",
    "DRPResult",
    "DRPSnapshot",
    "cds_refine",
    "CDSResult",
    "CDSMove",
    "channel_load",
    "hetero_waiting_time",
    "hetero_move_delta",
    "hetero_cds_refine",
    "HeteroCDSResult",
    "HeteroDRPCDSAllocator",
    "assign_groups_to_bandwidths",
    "insert_item",
    "remove_item",
    "update_frequency",
    "DEFAULT_REGRESSION_GUARD",
    "AllocationCache",
    "CompactAllocation",
    "IncrementalAllocator",
    "IncrementalStats",
    "WarmStartResult",
    "database_fingerprint",
    "warm_start_refine",
    "workload_fingerprint",
    "Allocator",
    "AllocationOutcome",
    "DRPAllocator",
    "DRPCDSAllocator",
    "CDSOnlyAllocator",
    "register_allocator",
    "make_allocator",
    "available_allocators",
]
