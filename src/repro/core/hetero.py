"""Heterogeneous-bandwidth channel allocation (extension).

The paper assumes every broadcast channel has the same bandwidth ``b``,
which is why the download term of Eq. (2) is allocation-independent and
the problem reduces to minimising ``Σ F_i Z_i``.  Real deployments mix
channel capacities.  With per-channel bandwidth ``b_i`` the average
waiting time becomes

.. math::

    W_b \\;=\\; \\sum_i \\frac{F_i Z_i / 2 + D_i}{b_i},
    \\qquad D_i = \\sum_{x \\in i} f_x z_x,

and *both* terms now depend on the allocation — including which group
sits on which physical channel.  This module provides:

* :func:`hetero_waiting_time` — the generalised objective;
* :func:`hetero_move_delta` — the O(1) single-move evaluation
  (the Eq. (4) analogue, now carrying the ``D_i`` aggregates and the
  two bandwidths);
* :func:`assign_groups_to_bandwidths` — the optimal mapping of fixed
  groups onto channels, by the rearrangement inequality: sorting group
  loads ``c_i = F_i Z_i / 2 + D_i`` against bandwidths pairs the largest
  load with the fastest channel, which minimises ``Σ c_i / b_i``;
* :func:`hetero_cds_refine` — greedy best-move local search on the
  generalised objective (CDS with bandwidth-aware deltas), re-running
  the group-to-channel assignment after convergence;
* :class:`HeteroDRPCDSAllocator` — DRP grouping + optimal assignment +
  bandwidth-aware CDS, packaged as an :class:`Allocator`.

With all bandwidths equal the machinery reduces exactly to the paper's:
the deltas collapse to Eq. (4)/(2b) and the assignment step is a no-op
(property-tested in ``tests/test_hetero.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError, InvalidAllocationError

__all__ = [
    "channel_load",
    "hetero_waiting_time",
    "hetero_move_delta",
    "assign_groups_to_bandwidths",
    "HeteroCDSResult",
    "hetero_cds_refine",
    "HeteroDRPCDSAllocator",
]

_IMPROVEMENT_EPSILON = 1e-12


def _check_bandwidths(
    bandwidths: Sequence[float], num_channels: int
) -> List[float]:
    if len(bandwidths) != num_channels:
        raise InvalidAllocationError(
            f"got {len(bandwidths)} bandwidths for {num_channels} channels"
        )
    values = [float(b) for b in bandwidths]
    if any(not (b > 0 and math.isfinite(b)) for b in values):
        raise InvalidAllocationError(
            f"bandwidths must be positive and finite, got {bandwidths!r}"
        )
    return values


def channel_load(items: Sequence[DataItem]) -> float:
    """Bandwidth-free load of a group: ``F·Z/2 + Σ f·z``.

    Dividing this by the channel's bandwidth yields the group's
    contribution to :math:`W_b` (probe half plus download).
    """
    freq = math.fsum(item.frequency for item in items)
    size = math.fsum(item.size for item in items)
    download = math.fsum(item.weight for item in items)
    return freq * size / 2.0 + download


def hetero_waiting_time(
    allocation: ChannelAllocation, bandwidths: Sequence[float]
) -> float:
    """Average waiting time with per-channel bandwidths.

    Channel ``i`` of the allocation transmits at ``bandwidths[i]``.
    """
    values = _check_bandwidths(bandwidths, allocation.num_channels)
    return math.fsum(
        channel_load(group) / b
        for group, b in zip(allocation.channels, values)
    )


def hetero_move_delta(
    item: DataItem,
    origin_frequency: float,
    origin_size: float,
    dest_frequency: float,
    dest_size: float,
    origin_bandwidth: float,
    dest_bandwidth: float,
) -> float:
    """Waiting-time reduction of moving ``item`` between channels.

    ``(origin_frequency, origin_size)`` include the item (it currently
    lives there); the destination aggregates exclude it.  Positive
    values mean the move lowers :math:`W_b`.

    Derivation: only the two affected channels' loads change.  For the
    origin, ``F·Z/2`` drops by ``(f·Z_p + z·F_p − f·z)/2 − f·z`` wait —
    expand ``(F_p − f)(Z_p − z) = F_p Z_p − f Z_p − z F_p + f z`` and the
    download sum drops by ``f·z``; dividing by ``b_p``.  Symmetrically
    for the destination.
    """
    f, z = item.frequency, item.size
    origin_probe_drop = (f * origin_size + z * origin_frequency - f * z) / 2.0
    dest_probe_rise = (f * dest_size + z * dest_frequency + f * z) / 2.0
    return (origin_probe_drop + f * z) / origin_bandwidth - (
        dest_probe_rise + f * z
    ) / dest_bandwidth


def assign_groups_to_bandwidths(
    groups: Sequence[Sequence[DataItem]],
    bandwidths: Sequence[float],
) -> List[int]:
    """Optimal group→channel mapping for fixed groups.

    Returns ``order`` such that ``groups[order[i]]`` should broadcast on
    channel ``i`` (the channel with ``bandwidths[i]``).  Minimises
    ``Σ load/bandwidth``; optimal by the rearrangement inequality —
    pairing the largest load with the largest bandwidth.
    """
    values = _check_bandwidths(bandwidths, len(groups))
    loads = [channel_load(group) for group in groups]
    # Fastest channels first...
    channel_order = sorted(
        range(len(values)), key=lambda i: -values[i]
    )
    # ...receive the heaviest groups.
    group_order = sorted(range(len(groups)), key=lambda g: -loads[g])
    mapping = [0] * len(groups)
    for channel, group in zip(channel_order, group_order):
        mapping[channel] = group
    return mapping


@dataclass
class HeteroCDSResult:
    """Outcome of :func:`hetero_cds_refine`.

    ``allocation.channels[i]`` broadcasts at ``bandwidths[i]`` of the
    refine call.
    """

    allocation: ChannelAllocation
    waiting_time: float
    initial_waiting_time: float
    moves: int = 0
    reassignments: int = 0
    converged: bool = True

    @property
    def improvement(self) -> float:
        return self.initial_waiting_time - self.waiting_time


def hetero_cds_refine(
    allocation: ChannelAllocation,
    bandwidths: Sequence[float],
    *,
    max_iterations: Optional[int] = None,
) -> HeteroCDSResult:
    """Bandwidth-aware CDS: greedy best moves on the generalised W_b.

    Alternates two phases until neither improves:

    1. single-item moves chosen by :func:`hetero_move_delta` (greedy
       best-improvement, exactly CDS's structure);
    2. re-assignment of whole groups to channels via
       :func:`assign_groups_to_bandwidths` (free with fixed groups, and
       moves in phase 1 can unbalance the pairing).
    """
    values = _check_bandwidths(bandwidths, allocation.num_channels)
    groups: List[List[DataItem]] = [list(g) for g in allocation.channels]
    initial = math.fsum(
        channel_load(g) / b for g, b in zip(groups, values)
    )
    # Improvements below this are float noise at the instance's
    # magnitude; accepting them lets tie states cycle forever (e.g. two
    # equal-load groups swapped back and forth by phase 2).
    threshold = _IMPROVEMENT_EPSILON * max(1.0, initial)
    moves = 0
    reassignments = 0
    converged = True

    while True:
        improved = False
        # Phase 1: item moves.
        while True:
            if max_iterations is not None and moves >= max_iterations:
                converged = False
                break
            best = _best_hetero_move(groups, values, threshold)
            if best is None:
                break
            _, origin, position, destination = best
            item = groups[origin].pop(position)
            groups[destination].append(item)
            moves += 1
            improved = True
        if not converged:
            break
        # Phase 2: remap groups to bandwidths, only on strict
        # improvement — the optimal mapping is not unique under load or
        # bandwidth ties, and a cost-neutral reorder must not count as
        # progress.
        mapping = assign_groups_to_bandwidths(groups, values)
        if mapping != list(range(len(groups))):
            loads = [channel_load(g) for g in groups]
            current = math.fsum(l / b for l, b in zip(loads, values))
            remapped = math.fsum(
                loads[mapping[i]] / b for i, b in enumerate(values)
            )
            if remapped < current - threshold:
                groups = [groups[mapping[i]] for i in range(len(groups))]
                reassignments += 1
                improved = True
        if not improved:
            break

    refined = allocation.replace_channels(groups)
    final = hetero_waiting_time(refined, values)
    return HeteroCDSResult(
        allocation=refined,
        waiting_time=final,
        initial_waiting_time=initial,
        moves=moves,
        reassignments=reassignments,
        converged=converged,
    )


def _best_hetero_move(
    groups: List[List[DataItem]],
    bandwidths: List[float],
    threshold: float = _IMPROVEMENT_EPSILON,
) -> Optional[Tuple[float, int, int, int]]:
    num_channels = len(groups)
    agg_f = [math.fsum(i.frequency for i in g) for g in groups]
    agg_z = [math.fsum(i.size for i in g) for g in groups]
    best_delta = threshold
    best: Optional[Tuple[float, int, int, int]] = None
    for origin in range(num_channels):
        if len(groups[origin]) <= 1:
            continue  # never empty a channel
        for position, item in enumerate(groups[origin]):
            for destination in range(num_channels):
                if destination == origin:
                    continue
                delta = hetero_move_delta(
                    item,
                    origin_frequency=agg_f[origin],
                    origin_size=agg_z[origin],
                    dest_frequency=agg_f[destination],
                    dest_size=agg_z[destination],
                    origin_bandwidth=bandwidths[origin],
                    dest_bandwidth=bandwidths[destination],
                )
                if delta > best_delta:
                    best_delta = delta
                    best = (delta, origin, position, destination)
    return best


class HeteroDRPCDSAllocator(Allocator):
    """DRP grouping + optimal channel assignment + bandwidth-aware CDS.

    Channel ``i`` of the returned allocation broadcasts at
    ``bandwidths[i]``.  The number of channels is implied by the
    bandwidth vector; the ``num_channels`` argument of ``allocate`` must
    agree with it.
    """

    name = "hetero-drp-cds"

    def __init__(self, bandwidths: Sequence[float]) -> None:
        if not bandwidths:
            raise InfeasibleProblemError("bandwidths cannot be empty")
        self._bandwidths = [float(b) for b in bandwidths]

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        if num_channels != len(self._bandwidths):
            raise InfeasibleProblemError(
                f"allocator configured for {len(self._bandwidths)} channels, "
                f"asked for {num_channels}"
            )
        rough = drp_allocate(database, num_channels)
        groups = [list(g) for g in rough.allocation.channels]
        mapping = assign_groups_to_bandwidths(groups, self._bandwidths)
        seeded = rough.allocation.replace_channels(
            [groups[mapping[i]] for i in range(num_channels)]
        )
        refined = hetero_cds_refine(seeded, self._bandwidths)
        self._note(
            hetero_waiting_time=refined.waiting_time,
            cds_moves=refined.moves,
            reassignments=refined.reassignments,
        )
        return refined.allocation
