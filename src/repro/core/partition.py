"""Optimal one-dimensional partitioning of benefit-ratio-ordered items.

DRP reduces the two-dimensional grouping problem to a one-dimensional
partitioning problem over the sequence of items sorted by benefit ratio
(paper, Section 3.1).  This module implements:

* :func:`best_split` — Procedure ``Partition(D_x)`` of the paper: the
  single split point minimising ``cost(left) + cost(right)`` for a given
  sequence, found in O(N) with prefix sums;
* :func:`split_costs` — the full cost profile over all split points
  (useful for tests and diagnostics);
* :func:`contiguous_optimal` — the *optimal* K-way contiguous partition
  of a sequence via dynamic programming in O(K·N²).  DRP's recursive
  bisection searches a subset of contiguous partitions; this DP yields
  the best contiguous partition outright and is used as a strong
  baseline and as an ablation reference.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.item import DataItem
from repro.exceptions import InfeasibleProblemError

__all__ = [
    "PrefixSums",
    "best_split",
    "split_costs",
    "contiguous_optimal",
]


class PrefixSums:
    """Prefix sums of frequency and size over an item sequence.

    For a sequence ``d_1 .. d_N``, provides the aggregates of any
    contiguous slice ``d_i .. d_j`` in O(1), which turns Procedure
    ``Partition`` into a linear scan and the contiguous DP into O(K·N²).
    """

    __slots__ = ("_freq", "_size")

    def __init__(self, items: Sequence[DataItem]) -> None:
        freq = [0.0] * (len(items) + 1)
        size = [0.0] * (len(items) + 1)
        for index, item in enumerate(items):
            freq[index + 1] = freq[index] + item.frequency
            size[index + 1] = size[index] + item.size
        self._freq = freq
        self._size = size

    def __len__(self) -> int:
        return len(self._freq) - 1

    def frequency(self, start: int, stop: int) -> float:
        """Aggregate frequency of the half-open slice ``[start, stop)``."""
        return self._freq[stop] - self._freq[start]

    def size(self, start: int, stop: int) -> float:
        """Aggregate size of the half-open slice ``[start, stop)``."""
        return self._size[stop] - self._size[start]

    def cost(self, start: int, stop: int) -> float:
        """Cost :math:`F \\cdot Z` of the half-open slice ``[start, stop)``."""
        return self.frequency(start, stop) * self.size(start, stop)


def best_split(items: Sequence[DataItem]) -> Tuple[int, float]:
    """Find the split minimising ``cost(left) + cost(right)``.

    This is Procedure ``Partition(D_x)`` of the paper.  The input should
    already be sorted by benefit ratio in descending order (the function
    itself works for any order; DRP guarantees the order).

    Returns
    -------
    (p, cost):
        ``p`` is the split index with ``1 <= p < len(items)``: the left
        part is ``items[:p]``, the right part ``items[p:]``.  ``cost`` is
        the minimised ``cost(left) + cost(right)``.  Among ties the
        smallest ``p`` is returned, making the procedure deterministic.

    Raises
    ------
    InfeasibleProblemError
        If the sequence has fewer than two items (nothing to split).
    """
    if len(items) < 2:
        raise InfeasibleProblemError(
            f"cannot split a sequence of {len(items)} item(s)"
        )
    sums = PrefixSums(items)
    n = len(items)
    best_index = 1
    best_cost = math.inf
    for p in range(1, n):
        total = sums.cost(0, p) + sums.cost(p, n)
        if total < best_cost:
            best_cost = total
            best_index = p
    return best_index, best_cost


def split_costs(items: Sequence[DataItem]) -> List[float]:
    """Cost of every split point: entry ``p-1`` is the cost of split ``p``.

    Exposed mainly for tests and for visualising how sharply the optimum
    is located; :func:`best_split` is the production entry point.
    """
    if len(items) < 2:
        raise InfeasibleProblemError(
            f"cannot split a sequence of {len(items)} item(s)"
        )
    sums = PrefixSums(items)
    n = len(items)
    return [sums.cost(0, p) + sums.cost(p, n) for p in range(1, n)]


def contiguous_optimal(
    items: Sequence[DataItem],
    num_groups: int,
) -> Tuple[List[Tuple[int, int]], float]:
    """Optimal K-way contiguous partition by dynamic programming.

    Partitions the (already ordered) sequence into exactly ``num_groups``
    non-empty contiguous runs minimising :math:`\\sum_g F_g Z_g`.

    Returns
    -------
    (boundaries, cost):
        ``boundaries`` is a list of ``(start, stop)`` half-open index
        pairs covering ``range(len(items))`` in order; ``cost`` is the
        minimal total cost.

    Raises
    ------
    InfeasibleProblemError
        If ``num_groups`` is not in ``[1, len(items)]``.

    Notes
    -----
    Complexity O(K·N²) time, O(K·N) space.  DRP explores only the
    partitions reachable by recursive bisection, so
    ``contiguous_optimal cost <= DRP cost`` always holds for the same
    item order — a property the test suite asserts.
    """
    n = len(items)
    if not 1 <= num_groups <= n:
        raise InfeasibleProblemError(
            f"cannot split {n} item(s) into {num_groups} non-empty groups"
        )
    sums = PrefixSums(items)
    # dp[g][i] = minimal cost of splitting items[:i] into g groups.
    infinity = math.inf
    dp = [[infinity] * (n + 1) for _ in range(num_groups + 1)]
    choice = [[0] * (n + 1) for _ in range(num_groups + 1)]
    dp[0][0] = 0.0
    for g in range(1, num_groups + 1):
        # items[:i] needs at least g items and must leave enough for
        # the remaining groups.
        for i in range(g, n - (num_groups - g) + 1):
            best_value = infinity
            best_j = g - 1
            for j in range(g - 1, i):
                if dp[g - 1][j] == infinity:
                    continue
                value = dp[g - 1][j] + sums.cost(j, i)
                if value < best_value:
                    best_value = value
                    best_j = j
            dp[g][i] = best_value
            choice[g][i] = best_j
    boundaries: List[Tuple[int, int]] = []
    stop = n
    for g in range(num_groups, 0, -1):
        start = choice[g][stop]
        boundaries.append((start, stop))
        stop = start
    boundaries.reverse()
    return boundaries, dp[num_groups][n]
