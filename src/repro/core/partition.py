"""Optimal one-dimensional partitioning of benefit-ratio-ordered items.

DRP reduces the two-dimensional grouping problem to a one-dimensional
partitioning problem over the sequence of items sorted by benefit ratio
(paper, Section 3.1).  This module implements:

* :func:`best_split` — Procedure ``Partition(D_x)`` of the paper: the
  single split point minimising ``cost(left) + cost(right)`` for a given
  sequence, found in O(N) with prefix sums;
* :func:`best_split_in` — the same scan over a half-open range of a
  *shared* :class:`PrefixSums`, so callers that repeatedly split
  sub-ranges of one ordered sequence (DRP) pay O(N) prefix-sum
  construction once instead of per call;
* :func:`split_costs` — the full cost profile over all split points
  (useful for tests and diagnostics);
* :func:`contiguous_optimal` — the *optimal* K-way contiguous partition
  of a sequence via dynamic programming.  DRP's recursive bisection
  searches a subset of contiguous partitions; this DP yields the best
  contiguous partition outright and is used as a strong baseline and as
  an ablation reference.  Three methods are available: the O(K·N²)
  textbook DP (``method="quadratic"``, kept as the cross-check oracle),
  an O(K·N log N) divide-and-conquer monotone-optimisation variant
  (``method="divide-conquer"``) and an O(K·N) SMAWK row-minima variant
  (``method="smawk"``, the default behind ``"auto"``) — valid because the range
  cost ``w(j, i) = (F_i − F_j)(Z_i − Z_j)`` is concave-Monge over
  non-decreasing prefix sums, which makes the optimal predecessor
  monotone in ``i``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernels
from repro.core.item import DataItem
from repro.exceptions import InfeasibleProblemError

__all__ = [
    "PrefixSums",
    "best_split",
    "best_split_in",
    "split_costs",
    "contiguous_optimal",
    "DP_METHODS",
]

#: Recognised ``contiguous_optimal`` methods (see module docstring).
DP_METHODS = ("auto", "quadratic", "divide-conquer", "smawk")


class PrefixSums:
    """Prefix sums of frequency and size over an item sequence.

    For a sequence ``d_1 .. d_N``, provides the aggregates of any
    contiguous slice ``d_i .. d_j`` in O(1), which turns Procedure
    ``Partition`` into a linear scan and the contiguous DP into O(K·N²).
    """

    __slots__ = ("_freq", "_size", "_arrays")

    def __init__(self, items: Sequence[DataItem]) -> None:
        freq = [0.0] * (len(items) + 1)
        size = [0.0] * (len(items) + 1)
        for index, item in enumerate(items):
            freq[index + 1] = freq[index] + item.frequency
            size[index + 1] = size[index] + item.size
        self._freq = freq
        self._size = size
        self._arrays = None

    @classmethod
    def from_arrays(cls, frequencies, sizes) -> "PrefixSums":
        """Prefix sums straight from feature arrays — no item objects.

        ``np.cumsum`` (``add.accumulate``) runs strictly sequentially,
        so the prefix floats are bit-for-bit the ones the per-item
        constructor accumulates.  Scalar accessors index plain Python
        floats (``tolist()``), so nothing downstream (heap priorities,
        JSON reports) ever sees a ``np.float64``.
        """
        if not kernels.HAS_NUMPY:  # pragma: no cover - numpy baked in
            raise InfeasibleProblemError(
                "PrefixSums.from_arrays() requires numpy"
            )
        import numpy as np

        n = len(frequencies)
        pf = np.empty(n + 1, dtype=np.float64)
        pz = np.empty(n + 1, dtype=np.float64)
        pf[0] = 0.0
        pz[0] = 0.0
        np.cumsum(frequencies, out=pf[1:])
        np.cumsum(sizes, out=pz[1:])
        self = object.__new__(cls)
        self._freq = pf.tolist()
        self._size = pz.tolist()
        pf.setflags(write=False)
        pz.setflags(write=False)
        self._arrays = (pf, pz)
        return self

    def __len__(self) -> int:
        return len(self._freq) - 1

    def frequency(self, start: int, stop: int) -> float:
        """Aggregate frequency of the half-open slice ``[start, stop)``."""
        return self._freq[stop] - self._freq[start]

    def size(self, start: int, stop: int) -> float:
        """Aggregate size of the half-open slice ``[start, stop)``."""
        return self._size[stop] - self._size[start]

    def cost(self, start: int, stop: int) -> float:
        """Cost :math:`F \\cdot Z` of the half-open slice ``[start, stop)``."""
        return self.frequency(start, stop) * self.size(start, stop)

    def arrays(self):
        """The prefix sums as a cached ``(freq, size)`` numpy array pair.

        The arrays hold exactly the floats of the scalar lists (no
        re-accumulation), so vectorized kernels reading them reproduce
        the scalar arithmetic bit-for-bit.
        """
        if self._arrays is None:
            if not kernels.HAS_NUMPY:  # pragma: no cover - numpy baked in
                raise InfeasibleProblemError(
                    "PrefixSums.arrays() requires numpy"
                )
            import numpy as np

            self._arrays = (
                np.asarray(self._freq, dtype=np.float64),
                np.asarray(self._size, dtype=np.float64),
            )
        return self._arrays


def best_split_in(
    sums: PrefixSums,
    start: int,
    stop: int,
    *,
    backend: str = "auto",
) -> Tuple[int, float]:
    """Best split of the range ``[start, stop)`` of a shared prefix sum.

    Range-based core of Procedure ``Partition``: scans every cut point
    of the half-open range using the already-built ``sums``, avoiding
    the O(N) slice-and-rebuild that a per-call :class:`PrefixSums`
    would cost.

    Returns
    -------
    (offset, cost):
        ``offset`` is relative to ``start`` with ``1 <= offset <
        stop - start``: the left part is ``[start, start + offset)``,
        the right part ``[start + offset, stop)``.  ``cost`` is the
        minimised ``cost(left) + cost(right)``.  Among ties the
        smallest offset wins on both backends.

    Raises
    ------
    InfeasibleProblemError
        If the range holds fewer than two items (nothing to split).
    """
    if stop - start < 2:
        raise InfeasibleProblemError(
            f"cannot split a sequence of {stop - start} item(s)"
        )
    if kernels.resolve_backend(backend) == "numpy":
        pf, pz = sums.arrays()
        return kernels.best_split_range_numpy(pf, pz, start, stop)
    best_offset = 1
    best_cost = math.inf
    for p in range(start + 1, stop):
        total = sums.cost(start, p) + sums.cost(p, stop)
        if total < best_cost:
            best_cost = total
            best_offset = p - start
    return best_offset, best_cost


def best_split(
    items: Sequence[DataItem],
    *,
    backend: str = "auto",
) -> Tuple[int, float]:
    """Find the split minimising ``cost(left) + cost(right)``.

    This is Procedure ``Partition(D_x)`` of the paper.  The input should
    already be sorted by benefit ratio in descending order (the function
    itself works for any order; DRP guarantees the order).

    Returns
    -------
    (p, cost):
        ``p`` is the split index with ``1 <= p < len(items)``: the left
        part is ``items[:p]``, the right part ``items[p:]``.  ``cost`` is
        the minimised ``cost(left) + cost(right)``.  Among ties the
        smallest ``p`` is returned, making the procedure deterministic.

    Raises
    ------
    InfeasibleProblemError
        If the sequence has fewer than two items (nothing to split).
    """
    if len(items) < 2:
        raise InfeasibleProblemError(
            f"cannot split a sequence of {len(items)} item(s)"
        )
    return best_split_in(PrefixSums(items), 0, len(items), backend=backend)


def split_costs(items: Sequence[DataItem]) -> List[float]:
    """Cost of every split point: entry ``p-1`` is the cost of split ``p``.

    Exposed mainly for tests and for visualising how sharply the optimum
    is located; :func:`best_split` is the production entry point.
    """
    if len(items) < 2:
        raise InfeasibleProblemError(
            f"cannot split a sequence of {len(items)} item(s)"
        )
    sums = PrefixSums(items)
    n = len(items)
    return [sums.cost(0, p) + sums.cost(p, n) for p in range(1, n)]


def contiguous_optimal(
    items: Optional[Sequence[DataItem]],
    num_groups: int,
    *,
    method: str = "auto",
    sums: Optional[PrefixSums] = None,
) -> Tuple[List[Tuple[int, int]], float]:
    """Optimal K-way contiguous partition by dynamic programming.

    Partitions the (already ordered) sequence into exactly ``num_groups``
    non-empty contiguous runs minimising :math:`\\sum_g F_g Z_g`.

    Parameters
    ----------
    items:
        The ordered item sequence.
    num_groups:
        The group count ``K``; must satisfy ``1 <= K <= len(items)``.
    method:
        ``"quadratic"`` — the O(K·N²) textbook DP, kept as the
        cross-check oracle; ``"divide-conquer"`` — the O(K·N log N)
        monotone-optimisation variant; ``"smawk"`` — the O(K·N) SMAWK
        row-minima variant; ``"auto"`` (default) — SMAWK.  All return
        identical costs (the range cost is concave-Monge, so the
        per-layer candidate matrix is totally monotone and every
        restricted search always contains the optimum — the minima are
        the same floats because all methods evaluate the identical
        candidate expression).
    sums:
        Optional pre-built :class:`PrefixSums` over the ordered
        sequence.  When given, ``items`` may be ``None`` — the
        array-resident entry point used by the SoA hot paths
        (``PrefixSums.from_arrays`` + ``sums=``) so a million-item DP
        never materialises :class:`DataItem` objects.

    Returns
    -------
    (boundaries, cost):
        ``boundaries`` is a list of ``(start, stop)`` half-open index
        pairs covering ``range(len(items))`` in order; ``cost`` is the
        minimal total cost.

    Raises
    ------
    InfeasibleProblemError
        If ``num_groups`` is not in ``[1, len(items)]`` or ``method``
        is unknown.

    Notes
    -----
    DRP explores only the partitions reachable by recursive bisection,
    so ``contiguous_optimal cost <= DRP cost`` always holds for the
    same item order — a property the test suite asserts.
    """
    n = len(sums) if sums is not None else len(items)
    if not 1 <= num_groups <= n:
        raise InfeasibleProblemError(
            f"cannot split {n} item(s) into {num_groups} non-empty groups"
        )
    if method not in DP_METHODS:
        raise InfeasibleProblemError(
            f"unknown method {method!r}; choose from {DP_METHODS}"
        )
    resolved = "smawk" if method == "auto" else method
    with obs.span(
        "partition.contiguous_optimal",
        items=n,
        groups=num_groups,
        method=resolved,
    ) as span:
        if sums is None:
            sums = PrefixSums(items)
        hb = obs.heartbeat("dp", rates=("rows_solved",))
        if resolved == "quadratic":
            choice, total, cells, evaluations = _dp_quadratic(
                sums, n, num_groups, heartbeat=hb
            )
        elif resolved == "divide-conquer":
            choice, total, cells, evaluations = _dp_divide_conquer(
                sums, n, num_groups, heartbeat=hb
            )
        else:
            choice, total, cells, evaluations = _dp_smawk(
                sums, n, num_groups, heartbeat=hb
            )
        if hb is not None:
            hb.flush(
                layers=num_groups, rows_solved=cells, evaluations=evaluations
            )
        boundaries: List[Tuple[int, int]] = []
        stop = n
        for g in range(num_groups, 0, -1):
            start = choice[g][stop]
            boundaries.append((start, stop))
            stop = start
        boundaries.reverse()
        span.update(cost=total, dp_cells=cells, dp_evaluations=evaluations)
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("dp.runs").inc()
            registry.counter("dp.cells").inc(cells)
            registry.counter("dp.evaluations").inc(evaluations)
    return boundaries, total


def _dp_quadratic(
    sums: PrefixSums, n: int, num_groups: int, *, heartbeat=None
) -> Tuple[List[List[int]], float, int, int]:
    """The O(K·N²) reference DP (the oracle the fast variant is checked
    against).  ``dp[g][i]`` is the minimal cost of splitting ``items[:i]``
    into ``g`` groups.  Returns ``(choice, cost, cells, evaluations)``
    where ``cells`` counts DP states filled and ``evaluations`` counts
    candidate predecessors scanned (both tallied per state, adding no
    inner-loop work)."""
    infinity = math.inf
    dp = [[infinity] * (n + 1) for _ in range(num_groups + 1)]
    choice = [[0] * (n + 1) for _ in range(num_groups + 1)]
    dp[0][0] = 0.0
    cells = 0
    evaluations = 0
    for g in range(1, num_groups + 1):
        # items[:i] needs at least g items and must leave enough for
        # the remaining groups.
        for i in range(g, n - (num_groups - g) + 1):
            best_value = infinity
            best_j = g - 1
            for j in range(g - 1, i):
                if dp[g - 1][j] == infinity:
                    continue
                value = dp[g - 1][j] + sums.cost(j, i)
                if value < best_value:
                    best_value = value
                    best_j = j
            dp[g][i] = best_value
            choice[g][i] = best_j
            cells += 1
            evaluations += i - (g - 1)
        if heartbeat is not None:
            heartbeat.beat(layers=g, rows_solved=cells, evaluations=evaluations)
    return choice, dp[num_groups][n], cells, evaluations


def _dp_divide_conquer(
    sums: PrefixSums, n: int, num_groups: int, *, heartbeat=None
) -> Tuple[List[List[int]], float, int, int]:
    """O(K·N log N) DP via divide-and-conquer optimisation.

    The layer recurrence ``dp_g(i) = min_j dp_{g-1}(j) + w(j, i)`` with
    ``w(j, i) = (F_i − F_j)(Z_i − Z_j)`` has monotone optimal ``j``
    because ``w`` is concave-Monge when the prefix sums are
    non-decreasing (positive frequencies and sizes guarantee that).
    Each layer is solved by recursing on the midpoint and narrowing the
    candidate window to ``[opt(lo), opt(hi)]``; the window scan itself
    is vectorized when numpy is available and falls back to the scalar
    loop otherwise — both produce the oracle's exact floats.
    """
    use_numpy = kernels.HAS_NUMPY
    infinity = math.inf
    if use_numpy:
        import numpy as np

        pf, pz = sums.arrays()
        dp_prev = np.full(n + 1, infinity)
        dp_prev[0] = 0.0
    else:  # pragma: no cover - numpy baked into the image
        dp_prev = [infinity] * (n + 1)
        dp_prev[0] = 0.0
    choice = [[0] * (n + 1) for _ in range(num_groups + 1)]
    cells = 0
    evaluations = 0
    for g in range(1, num_groups + 1):
        if use_numpy:
            dp_cur = np.full(n + 1, infinity)
        else:  # pragma: no cover
            dp_cur = [infinity] * (n + 1)
        i_lo, i_hi = g, n - (num_groups - g)
        # Explicit stack instead of recursion: depth is log N but large
        # catalogues should not depend on the interpreter's limit.
        stack = [(i_lo, i_hi, g - 1, i_hi - 1)]
        while stack:
            lo, hi, j_lo, j_hi = stack.pop()
            if lo > hi:
                continue
            mid = (lo + hi) // 2
            w_lo = max(j_lo, g - 1)
            w_hi = min(j_hi, mid - 1)
            cells += 1
            evaluations += max(0, w_hi + 1 - w_lo)
            if use_numpy:
                best_j, best_value = kernels.dp_window_argmin_numpy(
                    dp_prev, pf, pz, mid, w_lo, w_hi + 1
                )
            else:  # pragma: no cover
                best_value = infinity
                best_j = w_lo
                for j in range(w_lo, w_hi + 1):
                    if dp_prev[j] == infinity:
                        continue
                    value = dp_prev[j] + sums.cost(j, mid)
                    if value < best_value:
                        best_value = value
                        best_j = j
            dp_cur[mid] = best_value
            choice[g][mid] = best_j
            stack.append((lo, mid - 1, j_lo, best_j))
            stack.append((mid + 1, hi, best_j, j_hi))
        dp_prev = dp_cur
        if heartbeat is not None:
            heartbeat.beat(layers=g, rows_solved=cells, evaluations=evaluations)
    return choice, float(dp_prev[n]), cells, evaluations


def _dp_smawk(
    sums: PrefixSums, n: int, num_groups: int, *, heartbeat=None
) -> Tuple[List[List[int]], float, int, int]:
    """O(K·N) DP via SMAWK row-minima per layer.

    The layer recurrence ``dp_g(i) = min_j dp_{g-1}(j) + w(j, i)`` is a
    row-minima problem over the matrix ``M[i][j] = dp_{g-1}(j) +
    (F_i − F_j)(Z_i − Z_j)`` with ``j < i`` and the upper-right
    staircase (``j >= i``) padded with ``+inf``.  ``w`` is
    concave-Monge over non-decreasing prefix sums, so ``M`` is totally
    monotone and SMAWK finds every row minimum with O(rows + cols)
    candidate evaluations per layer.

    Exactness of the *values*: SMAWK only ever compares true matrix
    entries — every ``dp_g(i)`` it reports is the minimum of the same
    candidate floats the quadratic oracle scans, computed by the
    identical expression, so the costs agree bit-for-bit.  Among equal
    minima the *choice* of predecessor may differ from the oracle's
    leftmost-``j`` rule; boundaries are therefore validated by the cost
    they realise, not by position.

    Works on the plain-float prefix lists (indexing a Python list of
    floats is markedly faster than boxing ``np.float64`` scalars).
    """
    infinity = math.inf
    pf = sums._freq
    pz = sums._size
    dp_prev: List[float] = [infinity] * (n + 1)
    dp_prev[0] = 0.0
    choice = [[0] * (n + 1) for _ in range(num_groups + 1)]
    cells = 0
    evaluations = 0
    feature_arrays = None  # (pf, pz) as ndarrays, built once when needed
    for g in range(1, num_groups + 1):
        dp_cur: List[float] = [infinity] * (n + 1)
        i_lo, i_hi = g, n - (num_groups - g)
        if g == 1:
            # Only j = 0 is reachable: dp_1(i) = 0.0 + w(0, i), written
            # with the exact expression the oracle evaluates.
            base = dp_prev[0]
            f0 = pf[0]
            z0 = pz[0]
            for i in range(i_lo, i_hi + 1):
                dp_cur[i] = base + (pf[i] - f0) * (pz[i] - z0)
            cells += i_hi - i_lo + 1
            evaluations += i_hi - i_lo + 1
        else:
            rows = list(range(i_lo, i_hi + 1))
            # Layer g-1's feasible states are exactly [g-1, i_hi - 1],
            # so every column holds a finite dp_prev and the only +inf
            # entries are the staircase pad — an all-right suffix per
            # row, which preserves total monotonicity.
            cols = list(range(g - 1, i_hi))
            argmin = [0] * (n + 1)
            scratch = [0] * (n + 1)
            if kernels.HAS_NUMPY and len(rows) >= _SMAWK_VECTOR_ROWS:
                np = kernels.np
                if feature_arrays is None:
                    feature_arrays = (
                        np.asarray(pf, dtype=np.float64),
                        np.asarray(pz, dtype=np.float64),
                    )
                arrays = feature_arrays + (
                    np.asarray(dp_prev, dtype=np.float64),
                )
            else:
                arrays = None
            evaluations += _smawk_solve(
                rows, cols, pf, pz, dp_prev, argmin, scratch, arrays
            )
            choice_g = choice[g]
            for i in rows:
                j = argmin[i]
                dp_cur[i] = dp_prev[j] + (pf[i] - pf[j]) * (pz[i] - pz[j])
                choice_g[i] = j
            cells += len(rows)
            evaluations += len(rows)
        dp_prev = dp_cur
        if heartbeat is not None:
            heartbeat.beat(layers=g, rows_solved=cells, evaluations=evaluations)
    return choice, dp_prev[n], cells, evaluations


#: Levels with at least this many rows interpolate through the numpy
#: segment-argmin path; smaller levels stay on the scalar scan.
_SMAWK_VECTOR_ROWS = 2048


def _smawk_solve(
    rows: List[int],
    cols: List[int],
    pf: List[float],
    pz: List[float],
    prev: List[float],
    result: List[int],
    pos: List[int],
    arrays=None,
) -> int:
    """Row minima of the implicit DP matrix, written into ``result``.

    ``result[row]`` is the argmin column, leftmost kept on ties (strict
    ``<`` comparisons throughout).  The matrix entry at ``(i, j)`` is
    ``prev[j] + (pf[i] − pf[j]) · (pz[i] − pz[j])`` for ``j < i`` and
    ``+inf`` on the staircase ``j ≥ i`` — the staircase never wins a
    strict comparison, so it is handled by guards instead of computed
    sentinels (columns are increasing, so the pad is a per-row suffix
    and the guards are loop exits).

    Hot-path notes: the arithmetic is inlined (a per-entry closure call
    would cost more than the DP itself at a million rows per layer),
    the survivor stack's length is tracked in a plain int, and
    ``result``/``pos`` are flat lists indexed by row/column id rather
    than dicts — ``pos`` is a scratch buffer shared across recursion
    levels, safe because each level writes its own columns before
    reading them and children are done with it by then.  Returns the
    number of matrix entries actually evaluated; recursion depth is
    ``log2(len(rows))``.
    """
    if not rows:
        return 0
    evaluations = 0
    num_rows = len(rows)
    # REDUCE: discard columns that cannot be any row's minimum, keeping
    # at most len(rows) survivors.
    stack: List[int] = []
    push = stack.append
    pop = stack.pop
    depth = 0
    for col in cols:
        base = prev[col]
        fj = pf[col]
        zj = pz[col]
        while depth:
            row = rows[depth - 1]
            if col >= row:
                break
            top = stack[depth - 1]
            fi = pf[row]
            zi = pz[row]
            evaluations += 2
            if base + (fi - fj) * (zi - zj) < (
                prev[top] + (fi - pf[top]) * (zi - pz[top])
            ):
                pop()
                depth -= 1
            else:
                break
        if depth < num_rows:
            push(col)
            depth += 1
    cols = stack
    # Recurse on the odd-indexed rows against the surviving columns.
    evaluations += _smawk_solve(
        rows[1::2], cols, pf, pz, prev, result, pos, arrays
    )
    # INTERPOLATE: each even row's minimum lies between its neighbours'
    # minima (total monotonicity), so scan only that window.
    for k, col in enumerate(cols):
        pos[col] = k
    last = len(cols) - 1
    if arrays is not None and num_rows >= _SMAWK_VECTOR_ROWS:
        return evaluations + _interpolate_vectorized(
            rows, cols, pos, result, arrays, last
        )
    start = 0
    for r in range(0, num_rows, 2):
        row = rows[r]
        stop = pos[result[rows[r + 1]]] if r + 1 < num_rows else last
        fi = pf[row]
        zi = pz[row]
        best_col = cols[start]
        if best_col < row:
            best_value = prev[best_col] + (fi - pf[best_col]) * (
                zi - pz[best_col]
            )
            evaluations += 1
        else:
            best_value = math.inf
        for k in range(start + 1, stop + 1):
            col = cols[k]
            if col >= row:
                # Columns are increasing: the rest of the window is
                # staircase +inf and can never strictly win.
                break
            value = prev[col] + (fi - pf[col]) * (zi - pz[col])
            evaluations += 1
            if value < best_value:
                best_value = value
                best_col = col
        result[row] = best_col
        if r + 1 < num_rows:
            start = pos[result[rows[r + 1]]]
    return evaluations


def _interpolate_vectorized(
    rows: List[int],
    cols: List[int],
    pos: List[int],
    result: List[int],
    arrays,
    last: int,
) -> int:
    """The INTERPOLATE phase as one batched segment-argmin.

    Bitwise-identical to the scalar scan: every window entry is the
    same ``prev[j] + (pf[i] − pf[j]) · (pz[i] − pz[j])`` float (numpy
    elementwise float64 ops match the scalar expression operation for
    operation), staircase entries are forced to ``+inf`` so they never
    win, and ties keep the leftmost window position — the scalar
    loop's strict ``<`` rule — by taking the first index equal to the
    segment minimum.  An all-``+inf`` window degenerates to its first
    position in both implementations.
    """
    np = kernels.np
    pf_a, pz_a, prev_a = arrays
    num_rows = len(rows)
    cols_a = np.asarray(cols, dtype=np.intp)
    even = np.asarray(rows[0::2], dtype=np.intp)
    # Window [start, stop] per even row, chained through the odd rows'
    # already-solved minima exactly as the scalar loop chains `start`.
    stops_list = [pos[result[row]] for row in rows[1::2]]
    if num_rows % 2:
        stops_list.append(last)
    stops = np.asarray(stops_list, dtype=np.intp)
    starts = np.empty_like(stops)
    starts[0] = 0
    starts[1:] = stops[:-1]
    counts = stops - starts + 1
    offsets = np.cumsum(counts) - counts
    total = int(counts.sum())
    flat = (
        np.arange(total, dtype=np.intp)
        - np.repeat(offsets, counts)
        + np.repeat(starts, counts)
    )
    j = cols_a[flat]
    i = np.repeat(even, counts)
    values = prev_a[j] + (pf_a[i] - pf_a[j]) * (pz_a[i] - pz_a[j])
    values[j >= i] = math.inf
    minima = np.minimum.reduceat(values, offsets)
    candidates = np.where(
        values == np.repeat(minima, counts),
        np.arange(total, dtype=np.intp),
        total,
    )
    first = np.minimum.reduceat(candidates, offsets)
    best = cols_a[flat[first]]
    for t, row in enumerate(rows[0::2]):
        result[row] = int(best[t])
    return total
