"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` couples a firing time with a callback.  Ordering is
total and deterministic: time first, then a user-supplied priority (for
same-instant causality, e.g. "delivery completes before the next request
at the same timestamp"), then a monotone sequence number (FIFO among
otherwise equal events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Callable, Optional

__all__ = ["EventPriority", "Event"]


class EventPriority(IntEnum):
    """Coarse same-instant ordering classes.

    Smaller values fire first.  ``DELIVERY`` precedes ``ARRIVAL`` so a
    client whose download finishes exactly when another request arrives
    observes a consistent "completed" state.
    """

    DELIVERY = 0
    ARRIVAL = 1
    CONTROL = 2


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated firing time (seconds).
    priority:
        Same-instant ordering class.
    sequence:
        Monotone tie-breaker assigned by the engine.
    callback:
        Zero-argument callable invoked when the event fires.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped
        (lazy deletion — O(1) cancel).
    on_cancel:
        Internal hook the owning engine installs so its live pending
        counter can observe cancellations; cleared once the event is
        executed.  Fired at most once (double cancels are no-ops).
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    on_cancel: Optional[Callable[["Event"], Any]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel(self)
