"""The broadcast server: turns an allocation into a broadcast program.

The server side of Figure 1 of the paper: given a channel allocation it
instantiates one :class:`~repro.simulation.channel.BroadcastChannel` per
item group and routes item lookups to the carrying channel.  All
channels share the same bandwidth (the paper's model); a per-channel
bandwidth override is provided for the heterogeneous-bandwidth
extension exercised by one example.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.exceptions import SimulationError
from repro.simulation.channel import BroadcastChannel

__all__ = ["BroadcastProgram"]


class BroadcastProgram:
    """An executable broadcast program.

    Parameters
    ----------
    allocation:
        The channel allocation to broadcast.
    bandwidth:
        Common channel bandwidth ``b`` (size units per second).
    bandwidths:
        Optional per-channel bandwidths; overrides ``bandwidth`` when
        given and must have one entry per channel.
    """

    def __init__(
        self,
        allocation: ChannelAllocation,
        *,
        bandwidth: float = DEFAULT_BANDWIDTH,
        bandwidths: Optional[Sequence[float]] = None,
    ) -> None:
        if bandwidths is not None and len(bandwidths) != allocation.num_channels:
            raise SimulationError(
                f"got {len(bandwidths)} bandwidths for "
                f"{allocation.num_channels} channels"
            )
        self._allocation = allocation
        self._channels: Tuple[BroadcastChannel, ...] = tuple(
            BroadcastChannel(
                channel_id=index,
                items=group,
                bandwidth=(
                    bandwidths[index] if bandwidths is not None else bandwidth
                ),
            )
            for index, group in enumerate(allocation.channels)
        )
        self._channel_of: Dict[str, int] = {
            item.item_id: index
            for index, group in enumerate(allocation.channels)
            for item in group
        }

    @property
    def allocation(self) -> ChannelAllocation:
        return self._allocation

    @property
    def channels(self) -> Tuple[BroadcastChannel, ...]:
        return self._channels

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def channel_for(self, item_id: str) -> BroadcastChannel:
        """The channel carrying ``item_id``."""
        try:
            return self._channels[self._channel_of[item_id]]
        except KeyError:
            raise SimulationError(
                f"no channel carries item {item_id!r}"
            ) from None

    def waiting_time(self, item_id: str, tune_in: float) -> float:
        """Waiting time for a request of ``item_id`` arriving at ``tune_in``."""
        return self.channel_for(item_id).waiting_time(item_id, tune_in)

    def expected_waiting_time(self, item_id: str) -> float:
        """Analytical per-item expected waiting time (Eq. 1)."""
        return self.channel_for(item_id).expected_waiting_time(item_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastProgram(K={self.num_channels}, "
            f"items={len(self._channel_of)})"
        )
