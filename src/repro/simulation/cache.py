"""Client-side caching over a broadcast program (extension).

Acharya et al.'s Broadcast Disks work (the paper's reference [1])
showed that client caches change the broadcast picture: a request that
hits the local cache costs nothing, so the *effective* waiting time
depends on the caching policy as much as on the program.  This module
adds the client cache substrate:

* :class:`ClientCache` — a size-budgeted cache over
  :class:`~repro.core.item.DataItem` objects (diverse sizes: capacity
  is in size units, not slots);
* eviction policies — :class:`LRUPolicy`, :class:`LFUPolicy` and
  :class:`PIXPolicy`.  PIX is the broadcast-aware policy from the
  Broadcast Disks papers: evict the item with the smallest ratio of
  access probability to broadcast frequency (``p / x``) — an item that
  reappears on the air quickly is cheap to refetch, so it is a poor use
  of cache space even if moderately popular;
* :func:`simulate_with_cache` — measured effective waiting time and hit
  rate of a (program, cache, policy) combination under a Poisson
  request stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.simulation.metrics import SummaryStatistics, summarize
from repro.simulation.server import BroadcastProgram

__all__ = [
    "CachePolicy",
    "LRUPolicy",
    "LFUPolicy",
    "PIXPolicy",
    "ClientCache",
    "CacheReport",
    "simulate_with_cache",
]


@dataclass
class _Entry:
    item: DataItem
    last_used: float
    use_count: int


class CachePolicy(ABC):
    """Eviction policy: smaller score = evicted first."""

    name: str = "abstract"

    @abstractmethod
    def score(self, entry: _Entry) -> float:
        """Retention score of a cached entry (evict the minimum)."""

    def bind(self, program: BroadcastProgram) -> None:
        """Hook: observe the program before simulation (PIX needs it)."""


class LRUPolicy(CachePolicy):
    """Least Recently Used: evict the entry idle the longest."""

    name = "lru"

    def score(self, entry: _Entry) -> float:
        return entry.last_used


class LFUPolicy(CachePolicy):
    """Least Frequently Used: evict the entry with the fewest hits."""

    name = "lfu"

    def score(self, entry: _Entry) -> float:
        return float(entry.use_count)


class PIXPolicy(CachePolicy):
    """Broadcast Disks' P/X rule: evict the smallest ``p / x``.

    ``p`` is the item's access probability (the profile the program was
    built from) and ``x`` its broadcast frequency — here ``1 / cycle``
    of the carrying channel, so items parked on short cycles (which the
    allocator gave to hot items) are cheap to refetch and score low.
    """

    name = "pix"

    def __init__(self) -> None:
        self._cycle_of: Dict[str, float] = {}

    def bind(self, program: BroadcastProgram) -> None:
        self._cycle_of = {
            item.item_id: channel.cycle_length
            for channel in program.channels
            for item in channel.items
        }

    def score(self, entry: _Entry) -> float:
        cycle = self._cycle_of.get(entry.item.item_id)
        if cycle is None:
            raise SimulationError(
                f"PIX policy not bound for item {entry.item.item_id!r}"
            )
        broadcast_frequency = 1.0 / cycle
        return entry.item.frequency / broadcast_frequency


class ClientCache:
    """A size-budgeted item cache with a pluggable eviction policy.

    Capacity is expressed in size units; an item larger than the whole
    budget is simply never cached.
    """

    def __init__(self, capacity: float, policy: CachePolicy) -> None:
        if capacity < 0:
            raise SimulationError(
                f"capacity must be >= 0, got {capacity}"
            )
        self._capacity = float(capacity)
        self._policy = policy
        self._entries: Dict[str, _Entry] = {}
        self._used = 0.0

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def used(self) -> float:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._entries

    def touch(self, item_id: str, now: float) -> bool:
        """Record an access; returns True on a cache hit."""
        entry = self._entries.get(item_id)
        if entry is None:
            return False
        entry.last_used = now
        entry.use_count += 1
        return True

    def insert(self, item: DataItem, now: float) -> None:
        """Insert an item, evicting minimum-score entries as needed."""
        if item.size > self._capacity:
            return  # cannot ever fit
        if item.item_id in self._entries:
            self.touch(item.item_id, now)
            return
        while self._used + item.size > self._capacity and self._entries:
            victim_id = min(
                self._entries,
                key=lambda key: (
                    self._policy.score(self._entries[key]),
                    key,
                ),
            )
            self._used -= self._entries.pop(victim_id).item.size
        self._entries[item.item_id] = _Entry(
            item=item, last_used=now, use_count=1
        )
        self._used += item.size

    def cached_ids(self) -> List[str]:
        return sorted(self._entries)


@dataclass
class CacheReport:
    """Outcome of a cached-client simulation."""

    effective: SummaryStatistics
    miss_waiting: Optional[SummaryStatistics]
    hits: int
    misses: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def simulate_with_cache(
    allocation: ChannelAllocation,
    *,
    capacity: float,
    policy: Optional[CachePolicy] = None,
    num_requests: int = 10_000,
    arrival_rate: float = 1.0,
    bandwidth: float = DEFAULT_BANDWIDTH,
    seed: int = 0,
) -> CacheReport:
    """Effective waiting time with a caching client.

    A request for a cached item costs zero wait (a hit); a miss pays the
    broadcast waiting time and then inserts the item.  The *effective*
    summary averages over hits and misses — the latency the user feels.
    """
    if num_requests < 1:
        raise SimulationError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if arrival_rate <= 0:
        raise SimulationError(
            f"arrival_rate must be positive, got {arrival_rate}"
        )
    program = BroadcastProgram(allocation, bandwidth=bandwidth)
    if policy is None:
        policy = LRUPolicy()
    policy.bind(program)
    cache = ClientCache(capacity, policy)
    database = allocation.database
    rng = np.random.default_rng(seed)
    weights = np.array([item.frequency for item in database.items])
    weights = weights / weights.sum()
    ids = list(database.item_ids)

    clock = 0.0
    effective: List[float] = []
    miss_waits: List[float] = []
    hits = 0
    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    picks = rng.choice(len(ids), size=num_requests, p=weights)
    for gap, pick in zip(gaps, picks):
        clock += float(gap)
        item_id = ids[int(pick)]
        if cache.touch(item_id, clock):
            hits += 1
            effective.append(0.0)
            continue
        wait = program.waiting_time(item_id, clock)
        miss_waits.append(wait)
        effective.append(wait)
        cache.insert(database[item_id], clock + wait)
    return CacheReport(
        effective=summarize(effective),
        miss_waiting=summarize(miss_waits) if miss_waits else None,
        hits=hits,
        misses=len(miss_waits),
    )
