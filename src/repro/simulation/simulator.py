"""High-level simulation driver: validate allocations end-to-end.

:func:`run_broadcast_simulation` wires the pieces together — the event
kernel, a broadcast program, a Poisson request stream and a metrics
collector — and reports the *measured* average waiting time next to the
*analytical* :math:`W_b` of Eq. (2).  The law of large numbers says the
two converge; the property-based tests assert it within confidence
bounds for arbitrary allocations.

Each request becomes an ARRIVAL event; its handler asks the carrying
channel for the completion time of the next full transmission and
schedules a DELIVERY event there, whose handler records the waiting
time.  The event kernel is exercised for real (two events per request,
interleaved across channels), while channel timing stays exact.

Static scenarios also have a batched fast path
(:mod:`repro.simulation.batched`) that computes every request's waiting
time in one vectorized pass — select it with ``backend="numpy"``
(``"auto"`` picks it whenever numpy is importable).  Measured statistics
are bitwise-identical to the event-driven run; only
``events_processed`` differs (0, since no events are simulated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro import obs
from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH, average_waiting_time
from repro.exceptions import SimulationError
from repro.simulation.client import Request, RequestGenerator
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventPriority
from repro.simulation.metrics import SummaryStatistics, WaitingTimeCollector
from repro.simulation.server import BroadcastProgram

__all__ = ["SimulationReport", "run_broadcast_simulation"]


@dataclass
class SimulationReport:
    """Outcome of one simulation run.

    Attributes
    ----------
    measured:
        Empirical waiting-time summary over all completed requests.
    analytical_waiting_time:
        The model's :math:`W_b` (Eq. 2) for the simulated allocation —
        only meaningful when all channels share one bandwidth and the
        request distribution matches the database profile.
    num_requests:
        Completed requests.
    events_processed:
        Total events the kernel executed (2 × requests).
    per_item:
        Empirical summaries per item id (items never requested are
        absent).
    """

    measured: SummaryStatistics
    analytical_waiting_time: float
    num_requests: int
    events_processed: int
    per_item: Dict[str, SummaryStatistics]

    @property
    def relative_error(self) -> float:
        """``|measured − analytical| / analytical``."""
        if self.analytical_waiting_time == 0:
            raise SimulationError("analytical waiting time is zero")
        return (
            abs(self.measured.mean - self.analytical_waiting_time)
            / self.analytical_waiting_time
        )


def run_broadcast_simulation(
    allocation: ChannelAllocation,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
    bandwidths: Optional[Sequence[float]] = None,
    num_requests: int = 10_000,
    arrival_rate: float = 1.0,
    seed: int = 0,
    request_probabilities: Optional[Sequence[float]] = None,
    backend: str = "python",
) -> SimulationReport:
    """Simulate a broadcast program under a Poisson request stream.

    Parameters
    ----------
    allocation:
        The channel allocation to execute.
    bandwidth / bandwidths:
        Common, or per-channel, channel bandwidth.
    num_requests:
        Requests to generate; more requests tighten the match with the
        analytical model (error shrinks as ``1/√n``).
    arrival_rate:
        Poisson arrival rate λ (requests/second).  The rate does not
        bias the expectation — tune-in instants of a Poisson stream are
        uniform over the cycle in the long run (PASTA) — but a higher λ
        packs the same request count into fewer broadcast cycles.
    seed:
        RNG seed for the request stream.
    request_probabilities:
        Optional per-item request distribution override (profile
        mismatch experiments).
    backend:
        ``"python"`` (default) drives the discrete-event engine —
        two events per request, ``events_processed`` reported.
        ``"numpy"`` / ``"auto"`` use the batched closed-form fast path
        of :mod:`repro.simulation.batched`: identical measured
        statistics, ``events_processed = 0``, roughly an order of
        magnitude faster at large ``num_requests``.

    Returns
    -------
    SimulationReport
    """
    if backend not in ("python", "numpy", "auto"):
        raise SimulationError(
            f"backend must be 'python', 'numpy' or 'auto', got {backend!r}"
        )
    if backend in ("numpy", "auto"):
        from repro.simulation.batched import run_batched_simulation

        return run_batched_simulation(
            allocation,
            bandwidth=bandwidth,
            bandwidths=bandwidths,
            num_requests=num_requests,
            arrival_rate=arrival_rate,
            seed=seed,
            request_probabilities=request_probabilities,
        )
    if num_requests < 1:
        raise SimulationError(f"num_requests must be >= 1, got {num_requests}")
    program = BroadcastProgram(
        allocation, bandwidth=bandwidth, bandwidths=bandwidths
    )
    generator = RequestGenerator(
        allocation.database,
        arrival_rate=arrival_rate,
        seed=seed,
        request_probabilities=request_probabilities,
    )
    engine = SimulationEngine()
    collector = WaitingTimeCollector()

    def make_arrival_handler(request: Request):
        def on_arrival() -> None:
            completion = program.channel_for(request.item_id).delivery_completion(
                request.item_id, engine.now
            )

            def on_delivery() -> None:
                collector.record(
                    request.item_id, engine.now - request.arrival_time
                )

            engine.schedule_at(
                completion, on_delivery, priority=EventPriority.DELIVERY
            )

        return on_arrival

    for request in generator.generate(num_requests):
        engine.schedule_at(
            request.arrival_time,
            make_arrival_handler(request),
            priority=EventPriority.ARRIVAL,
        )

    with obs.span(
        "sim.run",
        backend="python",
        requests=num_requests,
        channels=allocation.num_channels,
    ) as span:
        engine.run()
        per_item = {
            item_id: collector.for_item(item_id)
            for item_id in collector.item_ids
        }
        report = SimulationReport(
            measured=collector.overall(),
            analytical_waiting_time=average_waiting_time(
                allocation, bandwidth=bandwidth
            ),
            num_requests=collector.count,
            events_processed=engine.processed_events,
            per_item={k: v for k, v in per_item.items() if v is not None},
        )
        span.update(
            events_processed=report.events_processed,
            requests_served=report.num_requests,
            measured_mean=report.measured.mean,
        )
        _record_simulation_metrics(report, allocation)
    return report


def _record_simulation_metrics(
    report: "SimulationReport", allocation: ChannelAllocation
) -> None:
    """Bump the ``sim.*`` counters and per-channel utilization gauges.

    Utilization here is each channel's share of the served requests —
    the broadcast medium itself is always transmitting, so demand share
    is the quantity that distinguishes hot channels from cold ones.
    Gauges are per channel index; everything is computed from the
    report's per-item summaries (no per-event bookkeeping).
    """
    registry = obs.get_metrics()
    if not registry.enabled:
        return
    registry.counter("sim.runs").inc()
    registry.counter("sim.requests_served").inc(report.num_requests)
    registry.counter("sim.events_processed").inc(report.events_processed)
    total = report.num_requests
    if not total:
        return
    channel_of: Dict[str, int] = {}
    for channel in range(allocation.num_channels):
        for item in allocation.channel_items(channel):
            channel_of[item.item_id] = channel
    served = [0] * allocation.num_channels
    for item_id, summary in report.per_item.items():
        channel = channel_of.get(item_id)
        if channel is not None:
            served[channel] += summary.count
    for channel, count in enumerate(served):
        registry.gauge("sim.channel_utilization", channel=channel).set(
            count / total
        )
        registry.counter("sim.channel_requests", channel=channel).inc(count)
