"""Multi-item query retrieval over a broadcast program (extension).

Models a single-tuner client resolving an unordered query: it can
listen to only one channel at a time, switches channels instantly, and
must fully receive every item of the query.  Strategy:

* **greedy** (default) — repeatedly download whichever pending item's
  next full transmission completes earliest;
* **fixed** — download the items in the query's listed order (a naive
  client), used as the comparison floor.

Greedy is a myopic heuristic, not an optimum, and it does not even
dominate the fixed order on every single instance (grabbing the nearest
item can make the client miss a rarer slot it should have taken first);
it does win clearly *on average*, which is what the tests assert.

:func:`simulate_query_workload` measures the mean *query span* (tune-in
to last completion) of a workload against any allocation — how the
paper's single-item allocators fare when clients actually need sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.exceptions import SimulationError
from repro.simulation.metrics import SummaryStatistics, summarize
from repro.simulation.server import BroadcastProgram
from repro.workloads.queries import QueryWorkload

__all__ = ["QueryRetrieval", "retrieve_query", "simulate_query_workload"]

_STRATEGIES = ("greedy", "fixed")


@dataclass(frozen=True)
class QueryRetrieval:
    """Outcome of resolving one query.

    Attributes
    ----------
    span:
        Tune-in to the completion of the last item (seconds).
    order:
        Item ids in downloaded order.
    completions:
        Completion instant of each item, aligned with ``order``.
    """

    span: float
    order: Tuple[str, ...]
    completions: Tuple[float, ...]


def retrieve_query(
    program: BroadcastProgram,
    item_ids: Sequence[str],
    tune_in: float,
    *,
    strategy: str = "greedy",
) -> QueryRetrieval:
    """Resolve an unordered multi-item query with a single tuner.

    The client finishes downloading one item before starting the next
    (one tuner); between downloads it may retune to any channel
    instantly.  A transmission must be received from its start, so an
    item whose slot began mid-download is caught on a later cycle.
    """
    if strategy not in _STRATEGIES:
        raise SimulationError(
            f"unknown strategy {strategy!r}; choose from {_STRATEGIES}"
        )
    if not item_ids:
        raise SimulationError("a query needs at least one item")
    if len(set(item_ids)) != len(item_ids):
        raise SimulationError("query lists an item twice")
    pending: List[str] = list(item_ids)
    clock = float(tune_in)
    order: List[str] = []
    completions: List[float] = []
    while pending:
        if strategy == "greedy":
            chosen = min(
                pending,
                key=lambda item_id: program.channel_for(
                    item_id
                ).delivery_completion(item_id, clock),
            )
        else:
            chosen = pending[0]
        completion = program.channel_for(chosen).delivery_completion(
            chosen, clock
        )
        pending.remove(chosen)
        order.append(chosen)
        completions.append(completion)
        clock = completion
    return QueryRetrieval(
        span=clock - tune_in,
        order=tuple(order),
        completions=tuple(completions),
    )


def simulate_query_workload(
    allocation: ChannelAllocation,
    workload: QueryWorkload,
    *,
    num_requests: int = 2000,
    arrival_rate: float = 1.0,
    bandwidth: float = DEFAULT_BANDWIDTH,
    strategy: str = "greedy",
    seed: int = 0,
) -> SummaryStatistics:
    """Measured query-span summary of a workload against an allocation.

    Queries arrive as a Poisson stream; each request samples a query by
    its frequency, resolves it with :func:`retrieve_query`, and records
    the span.
    """
    if num_requests < 1:
        raise SimulationError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if arrival_rate <= 0:
        raise SimulationError(
            f"arrival_rate must be positive, got {arrival_rate}"
        )
    missing = [
        item_id
        for item_id in workload.referenced_item_ids()
        if item_id not in allocation.database
    ]
    if missing:
        raise SimulationError(
            f"workload references items not in the allocation: "
            f"{missing[:5]}"
        )
    program = BroadcastProgram(allocation, bandwidth=bandwidth)
    rng = np.random.default_rng(seed)
    clock = 0.0
    spans: List[float] = []
    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    for gap in gaps:
        clock += float(gap)
        query = workload.sample(rng)
        result = retrieve_query(
            program, query.item_ids, clock, strategy=strategy
        )
        spans.append(result.span)
    return summarize(spans)
