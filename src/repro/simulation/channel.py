"""A cyclic broadcast channel.

A channel repeatedly transmits its item sequence at fixed bandwidth.
The broadcast cycle of channel ``c_i`` lasts ``Z_i / b`` seconds (the
aggregate item size over the bandwidth); item ``j`` occupies a fixed
slot ``[offset_j, offset_j + z_j / b)`` within every cycle.

The timing model matches the paper's analytical assumptions: a client
that tunes in at time ``t`` wanting item ``x`` must wait for the *start*
of the next full transmission of ``x`` (a partially received
transmission is useless) and then download it completely.  Averaged over
a uniformly random tune-in time this gives exactly Eq. (1):
``E[wait] = cycle/2 + z_x / b``.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

from repro.core.item import DataItem
from repro.exceptions import SimulationError

__all__ = ["BroadcastChannel"]


class BroadcastChannel:
    """Deterministic cyclic transmission schedule for one channel.

    Parameters
    ----------
    channel_id:
        Index of the channel within the program (0-based).
    items:
        Transmission order within a cycle.  Any order is valid; the
        expected waiting time is order-independent under uniform
        tune-in, but concrete per-request waits do depend on it.
    bandwidth:
        Channel bandwidth ``b`` in size units per second.
    """

    __slots__ = ("channel_id", "_items", "_bandwidth", "_offsets", "_cycle")

    def __init__(
        self,
        channel_id: int,
        items: Sequence[DataItem],
        bandwidth: float,
    ) -> None:
        if not items:
            raise SimulationError(
                f"channel {channel_id} has no items to broadcast"
            )
        if not (isinstance(bandwidth, (int, float)) and bandwidth > 0):
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth!r}"
            )
        self.channel_id = channel_id
        self._items: Tuple[DataItem, ...] = tuple(items)
        self._bandwidth = float(bandwidth)
        offsets: Dict[str, float] = {}
        elapsed = 0.0
        for item in self._items:
            if item.item_id in offsets:
                raise SimulationError(
                    f"item {item.item_id!r} appears twice on channel "
                    f"{channel_id}"
                )
            offsets[item.item_id] = elapsed
            elapsed += item.size / self._bandwidth
        self._offsets = offsets
        self._cycle = elapsed

    @property
    def items(self) -> Tuple[DataItem, ...]:
        return self._items

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    @property
    def cycle_length(self) -> float:
        """Duration of one broadcast cycle in seconds (``Z_i / b``)."""
        return self._cycle

    def carries(self, item_id: str) -> bool:
        return item_id in self._offsets

    def transmission_time(self, item_id: str) -> float:
        """Download duration ``z / b`` of one item."""
        return self._item(item_id).size / self._bandwidth

    def slot_offset(self, item_id: str) -> float:
        """Start offset of the item's slot within a cycle (seconds)."""
        if item_id not in self._offsets:
            raise SimulationError(
                f"channel {self.channel_id} does not carry {item_id!r}"
            )
        return self._offsets[item_id]

    def next_transmission_start(self, item_id: str, tune_in: float) -> float:
        """Earliest start ≥ ``tune_in`` of a full transmission of the item.

        The channel started cycle 0 at time 0 and repeats forever, so
        starts occur at ``offset + n · cycle`` for integer ``n ≥ 0``.
        """
        if tune_in < 0 or not math.isfinite(tune_in):
            raise SimulationError(
                f"tune_in must be finite and >= 0, got {tune_in!r}"
            )
        offset = self.slot_offset(item_id)
        if tune_in <= offset:
            return offset
        cycles_elapsed = math.ceil((tune_in - offset) / self._cycle)
        start = offset + cycles_elapsed * self._cycle
        # Guard against float round-down placing the start before tune_in.
        if start < tune_in:
            start += self._cycle
        return start

    def delivery_completion(self, item_id: str, tune_in: float) -> float:
        """Completion time of the request: next full transmission end."""
        start = self.next_transmission_start(item_id, tune_in)
        return start + self.transmission_time(item_id)

    def waiting_time(self, item_id: str, tune_in: float) -> float:
        """Waiting time (probe + download) for a tune-in at ``tune_in``."""
        return self.delivery_completion(item_id, tune_in) - tune_in

    def expected_waiting_time(self, item_id: str) -> float:
        """Analytical expectation of :meth:`waiting_time` — Eq. (1).

        Uniform tune-in over a cycle waits ``cycle/2`` on average for the
        slot start, plus the download time.
        """
        return self._cycle / 2.0 + self.transmission_time(item_id)

    def _item(self, item_id: str) -> DataItem:
        for item in self._items:
            if item.item_id == item_id:
                return item
        raise SimulationError(
            f"channel {self.channel_id} does not carry {item_id!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BroadcastChannel(id={self.channel_id}, items={len(self._items)}, "
            f"cycle={self._cycle:.6g}s)"
        )
