"""The client side: request generation for the broadcast simulation.

Mobile users are modelled as an aggregate Poisson request stream (the
standard teletraffic assumption, and the one under which the paper's
uniform-tune-in expectation holds): requests arrive with exponential
inter-arrival times, each request asks for item ``d_i`` with probability
``f_i`` — the access frequencies the broadcast program was optimised
for.  An optional *mismatch* knob perturbs the request distribution away
from the profile to study stale-profile behaviour (an extension, used in
tests and one example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.database import BroadcastDatabase
from repro.exceptions import SimulationError

__all__ = ["Request", "RequestGenerator"]


@dataclass(frozen=True)
class Request:
    """One client request: which item, and when the client tuned in."""

    request_id: int
    item_id: str
    arrival_time: float


class RequestGenerator:
    """Poisson request stream over a broadcast database.

    Parameters
    ----------
    database:
        The broadcast database; request probabilities default to its
        access frequencies (renormalised defensively).
    arrival_rate:
        Poisson rate λ in requests per second.
    seed:
        RNG seed for reproducible streams.
    request_probabilities:
        Optional override of the per-item request distribution (same
        order as ``database.items``); must be non-negative and sum to a
        positive value.  Used to model client populations whose actual
        interests drifted from the collected profile.
    """

    def __init__(
        self,
        database: BroadcastDatabase,
        *,
        arrival_rate: float = 1.0,
        seed: int = 0,
        request_probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        if not (isinstance(arrival_rate, (int, float)) and arrival_rate > 0):
            raise SimulationError(
                f"arrival_rate must be positive, got {arrival_rate!r}"
            )
        self._database = database
        self._rate = float(arrival_rate)
        self._rng = np.random.default_rng(seed)
        if request_probabilities is None:
            weights = np.array(
                [item.frequency for item in database.items], dtype=np.float64
            )
        else:
            weights = np.asarray(request_probabilities, dtype=np.float64)
            if len(weights) != len(database):
                raise SimulationError(
                    f"got {len(weights)} request probabilities for "
                    f"{len(database)} items"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise SimulationError(
                    "request probabilities must be non-negative with a "
                    "positive sum"
                )
        self._probabilities = weights / weights.sum()
        self._item_ids = list(database.item_ids)

    @property
    def arrival_rate(self) -> float:
        return self._rate

    @property
    def item_ids(self) -> Sequence[str]:
        """Item ids in draw-index order (``sample_batch`` indices)."""
        return tuple(self._item_ids)

    def sample_batch(
        self, num_requests: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw the whole request stream at once, as arrays.

        Returns ``(arrival_times, item_indices)``: the cumulative
        arrival clock of every request and the index (into
        ``database.items`` order) of the item it asks for.  This is the
        *exact* draw sequence :meth:`generate` wraps in
        :class:`Request` objects — one exponential batch, then one
        choice batch, then a sequential sum — so the event-driven and
        batched simulation paths see bitwise-identical streams for the
        same seed.
        """
        if num_requests < 0:
            raise SimulationError(
                f"num_requests must be >= 0, got {num_requests}"
            )
        # Draw in bulk for speed; numpy choice with p handles the skew.
        gaps = self._rng.exponential(1.0 / self._rate, size=num_requests)
        picks = self._rng.choice(
            len(self._item_ids), size=num_requests, p=self._probabilities
        )
        # add.accumulate is a strictly sequential left-to-right sum, the
        # same float64 additions a per-request `clock += gap` loop does.
        return np.add.accumulate(gaps), picks

    def generate(self, num_requests: int) -> Iterator[Request]:
        """Yield ``num_requests`` requests with increasing arrival times."""
        arrivals, picks = self.sample_batch(num_requests)
        for request_id in range(num_requests):
            yield Request(
                request_id=request_id,
                item_id=self._item_ids[int(picks[request_id])],
                arrival_time=float(arrivals[request_id]),
            )
