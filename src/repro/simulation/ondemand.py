"""On-demand (pull) broadcast scheduling (extension; paper's ref [2]).

The paper's footnote 1 points at *heterogeneous on-demand broadcast*
(Acharya & Muthukrishnan, MobiCom '98) as the pull-based sibling of its
push-based problem.  In the pull model clients send explicit requests
uplink; the server keeps a queue of pending requests and decides, each
time a channel frees up, **which item to broadcast next**.  One
transmission satisfies every pending request for that item (broadcast
batching).

Scheduling policies implemented:

* :class:`FCFSPolicy` — serve the item whose oldest request arrived
  first;
* :class:`MRFPolicy` — Most Requests First: the item with the largest
  pending batch;
* :class:`RxWPolicy` — the classic compromise: maximise
  ``(pending requests) × (wait of the oldest request)``;
* :class:`SizeAwareRxWPolicy` — RxW normalised by transmission time
  (``R × W / (z/b)``), the natural "stretch-aware" variant for the
  *diverse* environment where item sizes differ wildly.

:func:`simulate_on_demand` runs the event-driven server and reports
mean waiting time and mean **stretch** (wait ÷ own transmission time —
the fairness metric of the on-demand literature).
:func:`compare_push_pull` sweeps the request rate and sets the measured
pull performance against the load-independent analytical `W_b` of a
push program on the same channels — exhibiting the classic crossover:
pull wins when the air is quiet, push wins under heavy load.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH, average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.exceptions import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventPriority
from repro.simulation.metrics import SummaryStatistics, summarize

__all__ = [
    "PendingItem",
    "SchedulingPolicy",
    "FCFSPolicy",
    "MRFPolicy",
    "RxWPolicy",
    "SizeAwareRxWPolicy",
    "OnDemandReport",
    "simulate_on_demand",
    "compare_push_pull",
]


@dataclass
class PendingItem:
    """Queue state for one item with outstanding requests."""

    item_id: str
    size: float
    arrival_times: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.arrival_times)

    def oldest_wait(self, now: float) -> float:
        return now - self.arrival_times[0]


class SchedulingPolicy(ABC):
    """Picks which pending item a freed channel broadcasts next."""

    name: str = "abstract"

    @abstractmethod
    def priority(self, pending: PendingItem, now: float, bandwidth: float) -> float:
        """Larger = served sooner.  Ties break by item id (stable)."""

    def pick(
        self,
        queue: Dict[str, PendingItem],
        now: float,
        bandwidth: float,
    ) -> str:
        if not queue:
            raise SimulationError("cannot pick from an empty queue")
        return max(
            sorted(queue),  # stable tie-break by item id
            key=lambda item_id: self.priority(queue[item_id], now, bandwidth),
        )


class FCFSPolicy(SchedulingPolicy):
    """First come, first served (by the oldest pending request)."""

    name = "fcfs"

    def priority(self, pending: PendingItem, now: float, bandwidth: float) -> float:
        return pending.oldest_wait(now)


class MRFPolicy(SchedulingPolicy):
    """Most Requests First — maximise the satisfied batch."""

    name = "mrf"

    def priority(self, pending: PendingItem, now: float, bandwidth: float) -> float:
        return float(pending.count)


class RxWPolicy(SchedulingPolicy):
    """R × W: pending count times the oldest request's wait."""

    name = "rxw"

    def priority(self, pending: PendingItem, now: float, bandwidth: float) -> float:
        return pending.count * pending.oldest_wait(now)


class SizeAwareRxWPolicy(SchedulingPolicy):
    """R × W / (z/b): RxW per second of airtime spent.

    In a diverse environment a huge item with a modest RxW can block
    many small items; normalising by transmission time maximises
    satisfied value per airtime — the stretch-aware choice.
    """

    name = "rxw-size"

    def priority(self, pending: PendingItem, now: float, bandwidth: float) -> float:
        transmission = pending.size / bandwidth
        return pending.count * pending.oldest_wait(now) / transmission


@dataclass
class OnDemandReport:
    """Measurements of one on-demand simulation run."""

    waiting: SummaryStatistics
    stretch: SummaryStatistics
    broadcasts: int
    batched_ratio: float
    policy: str

    @property
    def mean_batch_size(self) -> float:
        return self.waiting.count / self.broadcasts if self.broadcasts else 0.0


def simulate_on_demand(
    database: BroadcastDatabase,
    *,
    policy: Optional[SchedulingPolicy] = None,
    num_channels: int = 1,
    bandwidth: float = DEFAULT_BANDWIDTH,
    num_requests: int = 5000,
    arrival_rate: float = 1.0,
    seed: int = 0,
) -> OnDemandReport:
    """Event-driven on-demand broadcast server.

    ``num_channels`` parallel broadcast units share one request queue;
    whenever a unit is idle and requests are pending, the policy picks
    an item and the unit transmits it once, satisfying every request for
    it that arrived before the transmission *started* (later arrivals
    queue for a future broadcast).
    """
    if policy is None:
        policy = RxWPolicy()
    if num_channels < 1:
        raise SimulationError(
            f"num_channels must be >= 1, got {num_channels}"
        )
    if num_requests < 1:
        raise SimulationError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if arrival_rate <= 0 or bandwidth <= 0:
        raise SimulationError(
            "arrival_rate and bandwidth must be positive"
        )

    rng = np.random.default_rng(seed)
    weights = np.array([item.frequency for item in database.items])
    weights = weights / weights.sum()
    ids = list(database.item_ids)
    sizes = {item.item_id: item.size for item in database.items}

    engine = SimulationEngine()
    queue: Dict[str, PendingItem] = {}
    idle_channels = num_channels
    waits: List[float] = []
    stretches: List[float] = []
    broadcasts = 0
    batched_requests = 0

    def try_dispatch() -> None:
        nonlocal idle_channels, broadcasts, batched_requests
        while idle_channels > 0 and queue:
            item_id = policy.pick(queue, engine.now, bandwidth)
            pending = queue.pop(item_id)
            idle_channels -= 1
            broadcasts += 1
            if pending.count > 1:
                batched_requests += pending.count - 1
            transmission = sizes[item_id] / bandwidth
            completion = engine.now + transmission
            arrivals = list(pending.arrival_times)

            def on_complete(
                arrivals=arrivals, transmission=transmission
            ) -> None:
                nonlocal idle_channels
                for arrival in arrivals:
                    wait = engine.now - arrival
                    waits.append(wait)
                    stretches.append(wait / transmission)
                idle_channels += 1
                try_dispatch()

            engine.schedule_at(
                completion, on_complete, priority=EventPriority.DELIVERY
            )

    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    picks = rng.choice(len(ids), size=num_requests, p=weights)
    clock = 0.0
    for gap, pick in zip(gaps, picks):
        clock += float(gap)
        item_id = ids[int(pick)]

        def on_arrival(item_id=item_id, arrival=clock) -> None:
            entry = queue.get(item_id)
            if entry is None:
                queue[item_id] = PendingItem(
                    item_id=item_id,
                    size=sizes[item_id],
                    arrival_times=[arrival],
                )
            else:
                entry.arrival_times.append(arrival)
            try_dispatch()

        engine.schedule_at(
            clock, on_arrival, priority=EventPriority.ARRIVAL
        )

    engine.run()
    if len(waits) != num_requests:
        raise SimulationError(
            f"simulation lost requests: {len(waits)} != {num_requests}"
        )
    return OnDemandReport(
        waiting=summarize(waits),
        stretch=summarize(stretches),
        broadcasts=broadcasts,
        batched_ratio=batched_requests / num_requests,
        policy=policy.name,
    )


def compare_push_pull(
    database: BroadcastDatabase,
    push_allocation: ChannelAllocation,
    *,
    rates: Sequence[float],
    num_channels: int,
    bandwidth: float = DEFAULT_BANDWIDTH,
    num_requests: int = 5000,
    policy: Optional[SchedulingPolicy] = None,
    seed: int = 0,
) -> List[Tuple[float, float, float]]:
    """Measured pull waits vs the push program's analytical `W_b`.

    Returns ``(rate, pull_mean_wait, push_wait)`` per rate.  Both sides
    get the same aggregate bandwidth (``num_channels × bandwidth``); the
    push wait is load-independent (the program broadcasts regardless of
    demand), the pull wait grows with load as batching saturates.
    """
    if not rates:
        raise SimulationError("rates cannot be empty")
    push_wait = average_waiting_time(push_allocation, bandwidth=bandwidth)
    rows: List[Tuple[float, float, float]] = []
    for index, rate in enumerate(rates):
        if rate <= 0 or not math.isfinite(rate):
            raise SimulationError(f"rates must be positive, got {rate!r}")
        report = simulate_on_demand(
            database,
            policy=policy,
            num_channels=num_channels,
            bandwidth=bandwidth,
            num_requests=num_requests,
            arrival_rate=rate,
            seed=seed + index,
        )
        rows.append((float(rate), report.waiting.mean, push_wait))
    return rows
