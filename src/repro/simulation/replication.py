"""Data replication across channels (extension; the paper's ref [8]).

The paper's model partitions items: each item lives on exactly one
channel.  Huang & Chen (the paper's reference [8]) study *replication* —
broadcasting a popular item on several channels at once so clients
catch it sooner.  This module adds the evaluation substrate:

* :class:`ReplicatedProgram` — a broadcast program whose channels may
  overlap; a schedule-aware client retrieves an item from whichever
  carrying channel completes a full transmission first;
* :func:`replicate_hot_items` — the classic transformation: copy the
  ``r`` hottest items onto every channel;
* :func:`simulate_replicated_program` — Monte-Carlo measurement of the
  average waiting time (the min-over-channels expectation has no clean
  closed form once cycle lengths are incommensurate).

The trade-off this exposes: replicas shorten the probe for hot items
but lengthen every carrying channel's cycle, taxing all other items.
With a strongly skewed profile a few replicas win; replicate too much
and the cycles bloat — the sweep in ``benchmarks/bench_replication.py``
shows the U-shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.simulation.channel import BroadcastChannel
from repro.simulation.metrics import SummaryStatistics, summarize

__all__ = [
    "ReplicatedProgram",
    "replicate_hot_items",
    "simulate_replicated_program",
]


class ReplicatedProgram:
    """A broadcast program whose channels may carry overlapping items.

    Unlike :class:`~repro.simulation.server.BroadcastProgram`, the
    channel item lists need not partition the database — they must only
    *cover* it (every item broadcast somewhere) and stay duplicate-free
    within each channel.
    """

    def __init__(
        self,
        database: BroadcastDatabase,
        channel_items: Sequence[Sequence[DataItem]],
        *,
        bandwidth: float = DEFAULT_BANDWIDTH,
    ) -> None:
        if not channel_items:
            raise SimulationError("a program needs at least one channel")
        self._database = database
        self._channels: Tuple[BroadcastChannel, ...] = tuple(
            BroadcastChannel(index, group, bandwidth)
            for index, group in enumerate(channel_items)
        )
        carriers: Dict[str, List[int]] = {}
        for index, group in enumerate(channel_items):
            for item in group:
                if item.item_id not in database:
                    raise SimulationError(
                        f"item {item.item_id!r} is not in the database"
                    )
                carriers.setdefault(item.item_id, []).append(index)
        missing = [i for i in database.item_ids if i not in carriers]
        if missing:
            raise SimulationError(
                f"items not broadcast on any channel: {missing[:5]}"
            )
        self._carriers = carriers

    @property
    def database(self) -> BroadcastDatabase:
        return self._database

    @property
    def channels(self) -> Tuple[BroadcastChannel, ...]:
        return self._channels

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def carriers_of(self, item_id: str) -> List[int]:
        """Indices of the channels broadcasting ``item_id``."""
        try:
            return list(self._carriers[item_id])
        except KeyError:
            raise SimulationError(
                f"no channel carries item {item_id!r}"
            ) from None

    def replication_degree(self, item_id: str) -> int:
        return len(self.carriers_of(item_id))

    def total_broadcast_size(self) -> float:
        """Size units transmitted per full round of all channels —
        the bandwidth price of replication."""
        return sum(
            sum(item.size for item in channel.items)
            for channel in self._channels
        )

    def waiting_time(self, item_id: str, tune_in: float) -> float:
        """Waiting time with a schedule-aware client.

        The client tunes to whichever carrying channel completes a full
        transmission of the item first (it learned the schedules from a
        directory, cf. the indexing extension).
        """
        completions = [
            self._channels[index].delivery_completion(item_id, tune_in)
            for index in self.carriers_of(item_id)
        ]
        return min(completions) - tune_in


def replicate_hot_items(
    allocation: ChannelAllocation,
    num_replicated: int,
) -> List[List[DataItem]]:
    """Copy the ``num_replicated`` hottest items onto every channel.

    Returns per-channel item lists for :class:`ReplicatedProgram`.  The
    hot items keep their home slot and additionally appear (appended) on
    every other channel; ``num_replicated = 0`` returns the original
    partition unchanged.
    """
    if num_replicated < 0:
        raise SimulationError(
            f"num_replicated must be >= 0, got {num_replicated}"
        )
    database = allocation.database
    hot = [
        item.item_id
        for item in database.sorted_by_frequency()[:num_replicated]
    ]
    channel_lists: List[List[DataItem]] = [
        list(group) for group in allocation.channels
    ]
    for item_id in hot:
        item = database[item_id]
        home = allocation.channel_of(item_id)
        for index, group in enumerate(channel_lists):
            if index != home:
                group.append(item)
    return channel_lists


def simulate_replicated_program(
    program: ReplicatedProgram,
    *,
    num_requests: int = 10_000,
    arrival_rate: float = 1.0,
    seed: int = 0,
    request_probabilities: Optional[Sequence[float]] = None,
) -> SummaryStatistics:
    """Measured average waiting time under a Poisson request stream."""
    if num_requests < 1:
        raise SimulationError(
            f"num_requests must be >= 1, got {num_requests}"
        )
    if arrival_rate <= 0:
        raise SimulationError(
            f"arrival_rate must be positive, got {arrival_rate}"
        )
    database = program.database
    rng = np.random.default_rng(seed)
    if request_probabilities is None:
        weights = np.array([item.frequency for item in database.items])
    else:
        weights = np.asarray(request_probabilities, dtype=np.float64)
        if len(weights) != len(database):
            raise SimulationError(
                f"got {len(weights)} probabilities for {len(database)} items"
            )
    weights = weights / weights.sum()
    ids = list(database.item_ids)
    clock = 0.0
    waits: List[float] = []
    gaps = rng.exponential(1.0 / arrival_rate, size=num_requests)
    picks = rng.choice(len(ids), size=num_requests, p=weights)
    for gap, pick in zip(gaps, picks):
        clock += float(gap)
        waits.append(program.waiting_time(ids[int(pick)], clock))
    return summarize(waits)
