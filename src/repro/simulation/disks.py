"""Broadcast Disks: multi-frequency scheduling *within* a channel.

The paper's model broadcasts every item exactly once per cycle and gets
its leverage from *which channel* an item lives on.  Acharya et al.'s
Broadcast Disks (the paper's reference [1]) work the other axis: on a
single channel, repeat hot items several times per cycle, evenly
spaced, as if spinning several virtual disks at different speeds.

This module implements:

* :class:`MultiScheduleChannel` — a cyclic channel whose schedule may
  repeat items; exact expected waiting time via the gap formula
  (for appearance starts with wrap-around gaps ``g_i`` in a cycle of
  length ``C``, the expected wait to the next start under uniform
  tune-in is ``Σ g_i² / (2C)`` — evenly spaced repeats minimise it);
* :func:`broadcast_disk_schedule` — Acharya's chunk-interleaving
  program generation: disk ``i`` spins at integer frequency ``f_i``;
  each minor cycle broadcasts one chunk of every disk, so disk ``i``'s
  items appear ``f_i`` times per major cycle, evenly spaced;
* :func:`disks_from_allocation` — reuse a channel-allocation algorithm
  (e.g. DRP) to form the disks: its "channels" become the disks.

This lets the benchmarks compare the two mechanisms at equal bandwidth:
K separate channels (the paper) vs one fat channel spinning K disks
(Broadcast Disks).  Extension beyond the paper (DESIGN.md §6).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.exceptions import SimulationError

__all__ = [
    "MultiScheduleChannel",
    "broadcast_disk_schedule",
    "disks_from_allocation",
]


class MultiScheduleChannel:
    """A cyclic channel whose schedule may repeat items.

    Parameters
    ----------
    channel_id:
        Channel index.
    schedule:
        Transmission order within one (major) cycle; an item may appear
        multiple times, always as the *same* :class:`DataItem` object
        value.
    bandwidth:
        Size units per second.
    """

    def __init__(
        self,
        channel_id: int,
        schedule: Sequence[DataItem],
        bandwidth: float,
    ) -> None:
        if not schedule:
            raise SimulationError(
                f"channel {channel_id} has an empty schedule"
            )
        if not (isinstance(bandwidth, (int, float)) and bandwidth > 0):
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth!r}"
            )
        self.channel_id = channel_id
        self._bandwidth = float(bandwidth)
        self._starts: Dict[str, List[float]] = {}
        self._duration: Dict[str, float] = {}
        clock = 0.0
        for item in schedule:
            known = self._duration.get(item.item_id)
            duration = item.size / self._bandwidth
            if known is not None and abs(known - duration) > 1e-12:
                raise SimulationError(
                    f"item {item.item_id!r} appears with two different "
                    f"sizes on channel {channel_id}"
                )
            self._starts.setdefault(item.item_id, []).append(clock)
            self._duration[item.item_id] = duration
            clock += duration
        self._cycle = clock
        self._schedule: Tuple[DataItem, ...] = tuple(schedule)

    @property
    def cycle_length(self) -> float:
        return self._cycle

    @property
    def schedule(self) -> Tuple[DataItem, ...]:
        return self._schedule

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    def carries(self, item_id: str) -> bool:
        return item_id in self._starts

    def appearances(self, item_id: str) -> int:
        """How many times the item is transmitted per major cycle."""
        return len(self._lookup(item_id))

    def next_transmission_start(self, item_id: str, tune_in: float) -> float:
        """Earliest start ≥ ``tune_in`` of a full transmission."""
        if tune_in < 0 or not math.isfinite(tune_in):
            raise SimulationError(
                f"tune_in must be finite and >= 0, got {tune_in!r}"
            )
        starts = self._lookup(item_id)
        phase = tune_in % self._cycle
        base = tune_in - phase
        for start in starts:
            if start >= phase - 1e-12:
                return base + start
        return base + self._cycle + starts[0]

    def waiting_time(self, item_id: str, tune_in: float) -> float:
        start = self.next_transmission_start(item_id, tune_in)
        return start + self._duration[item_id] - tune_in

    def expected_waiting_time(self, item_id: str) -> float:
        """Exact expectation under uniform tune-in — the gap formula.

        With appearance starts ``a_1 < ... < a_m`` and wrap-around gaps
        ``g_i``, a uniform tune-in lands in gap ``i`` with probability
        ``g_i / C`` and then waits ``g_i / 2`` on average, giving
        ``Σ g_i² / (2C)``; plus the download time.
        """
        starts = self._lookup(item_id)
        cycle = self._cycle
        gaps = [
            starts[i + 1] - starts[i] for i in range(len(starts) - 1)
        ]
        gaps.append(cycle - starts[-1] + starts[0])
        probe = math.fsum(g * g for g in gaps) / (2.0 * cycle)
        return probe + self._duration[item_id]

    def _lookup(self, item_id: str) -> List[float]:
        try:
            return self._starts[item_id]
        except KeyError:
            raise SimulationError(
                f"channel {self.channel_id} does not carry {item_id!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiScheduleChannel(id={self.channel_id}, "
            f"slots={len(self._schedule)}, cycle={self._cycle:.6g}s)"
        )


def broadcast_disk_schedule(
    disks: Sequence[Sequence[DataItem]],
    frequencies: Sequence[int],
) -> List[DataItem]:
    """Acharya's chunk-interleaved broadcast program.

    Disk ``i`` spins at integer relative frequency ``f_i``: split it
    into ``max_chunks / f_i`` chunks where ``max_chunks`` is the LCM of
    the frequencies, then emit ``max_chunks`` minor cycles, each
    carrying the next chunk of every disk (fast disks wrap around more
    often, so their items recur evenly ``f_i`` times per major cycle).

    Items must not repeat across or within disks; frequencies must be
    positive integers, one per disk.
    """
    if not disks:
        raise SimulationError("need at least one disk")
    if len(frequencies) != len(disks):
        raise SimulationError(
            f"got {len(frequencies)} frequencies for {len(disks)} disks"
        )
    freqs: List[int] = []
    for value in frequencies:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise SimulationError(
                f"frequencies must be positive integers, got {value!r}"
            )
        freqs.append(value)
    seen = set()
    for disk in disks:
        if not disk:
            raise SimulationError("disks cannot be empty")
        for item in disk:
            if item.item_id in seen:
                raise SimulationError(
                    f"item {item.item_id!r} assigned to two disk slots"
                )
            seen.add(item.item_id)

    max_chunks = math.lcm(*freqs)
    chunked: List[List[List[DataItem]]] = []
    for disk, frequency in zip(disks, freqs):
        num_chunks = max_chunks // frequency
        chunks: List[List[DataItem]] = [[] for _ in range(num_chunks)]
        for index, item in enumerate(disk):
            chunks[index % num_chunks].append(item)
        chunked.append(chunks)

    schedule: List[DataItem] = []
    for minor in range(max_chunks):
        for chunks in chunked:
            schedule.extend(chunks[minor % len(chunks)])
    return schedule


def disks_from_allocation(
    database: BroadcastDatabase,
    num_disks: int,
) -> List[List[DataItem]]:
    """Form disks with a DRP grouping (hottest benefit-ratio disk first).

    The channel-allocation machinery doubles as the disk-assignment
    step: DRP's groups, ordered hot-to-cold, become disks 1..n.
    """
    result = drp_allocate(database, num_disks)
    groups = [list(group) for group in result.allocation.channels]
    groups.sort(
        key=lambda group: -sum(item.frequency for item in group)
        / sum(item.size for item in group)
    )
    return groups
