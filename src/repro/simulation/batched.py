"""Batched broadcast simulation: the static-scenario fast path.

The event-driven engine executes two Python callbacks per request
(arrival + delivery), which dominates the cost of validating large
request streams.  For *static* scenarios — a fixed broadcast program,
no adaptive re-allocation, no client cache — every request's waiting
time is a closed-form function of its tune-in instant and the carrying
channel's precomputed cycle geometry, so the whole stream can be
evaluated as a handful of numpy gathers instead of ``2·n`` heap events.

The vectorized arithmetic mirrors
:meth:`~repro.simulation.channel.BroadcastChannel.next_transmission_start`
operation for operation (same division, same ceil, same round-down
guard, same association order when adding the download time), and the
request stream comes from the same
:meth:`~repro.simulation.client.RequestGenerator.sample_batch` draws the
engine consumes — so the reported metrics are **bitwise-identical** to
the engine's for the same seed (``tests/test_batched.py`` asserts it;
summary statistics use exact ``math.fsum`` accumulation, making them
independent of recording order).  The only intentional difference:
``events_processed`` is 0, because no events exist on this path.

Select it through ``run_broadcast_simulation(..., backend="numpy")`` —
the same ``"python" | "numpy" | "auto"`` convention as
:mod:`repro.core.kernels`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH, average_waiting_time
from repro.exceptions import SimulationError
from repro.simulation.client import RequestGenerator
from repro.simulation.metrics import SummaryStatistics, summarize
from repro.simulation.server import BroadcastProgram

__all__ = ["batched_waiting_times", "run_batched_simulation"]


def _program_geometry(
    program: BroadcastProgram, item_ids: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-item (cycle, slot offset, download time), in ``item_ids`` order.

    Computed straight off the allocation's index groups and the
    database's size array — no per-item objects, no per-item method
    calls.  ``np.cumsum`` over the per-slot durations is the channel's
    sequential ``elapsed += size / bandwidth`` accumulation, so every
    offset and cycle length is bit-for-bit the value
    :class:`~repro.simulation.channel.BroadcastChannel` holds.
    """
    allocation = program.allocation
    database = allocation.database
    sizes = database.sizes
    n = len(database)
    cycles = np.empty(n, dtype=np.float64)
    offsets = np.empty(n, dtype=np.float64)
    downloads = np.empty(n, dtype=np.float64)
    for channel, group in zip(
        program.channels, allocation.channel_index_groups
    ):
        slots = sizes[group] / channel.bandwidth
        starts = np.empty(len(slots) + 1, dtype=np.float64)
        starts[0] = 0.0
        np.cumsum(slots, out=starts[1:])
        cycles[group] = starts[-1]
        offsets[group] = starts[:-1]
        downloads[group] = slots
    order = np.fromiter(
        (database.index_of(item_id) for item_id in item_ids),
        dtype=np.intp,
        count=len(item_ids),
    )
    return cycles[order], offsets[order], downloads[order]


def batched_waiting_times(
    program: BroadcastProgram,
    item_ids: Sequence[str],
    arrivals: np.ndarray,
    picks: np.ndarray,
) -> np.ndarray:
    """Waiting time of every request, vectorized over the whole stream.

    ``arrivals``/``picks`` are the arrays of
    :meth:`RequestGenerator.sample_batch`; ``item_ids`` maps pick
    indices to items.  Replicates the channel timing model exactly: a
    request tuning in at ``t`` waits for the start of the next *full*
    transmission of its item (slot starts at ``offset + n·cycle``) and
    then downloads it completely.
    """
    cycles, offsets, downloads = _program_geometry(program, item_ids)
    t = np.asarray(arrivals, dtype=np.float64)
    cycle = cycles[picks]
    offset = offsets[picks]
    # Same float ops as next_transmission_start: ceil of the elapsed
    # cycle fraction, then the round-down guard for the case where
    # float error lands the computed start just before the tune-in.
    elapsed_cycles = np.ceil((t - offset) / cycle)
    start = offset + elapsed_cycles * cycle
    start = np.where(t <= offset, offset, start)
    start = np.where(start < t, start + cycle, start)
    completion = start + downloads[picks]
    return completion - t


def run_batched_simulation(
    allocation: ChannelAllocation,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
    bandwidths: Optional[Sequence[float]] = None,
    num_requests: int = 10_000,
    arrival_rate: float = 1.0,
    seed: int = 0,
    request_probabilities: Optional[Sequence[float]] = None,
) -> "SimulationReport":
    """Run the static broadcast simulation without a single event.

    Drop-in replacement for
    :func:`~repro.simulation.simulator.run_broadcast_simulation` (same
    parameters, same report, identical measured statistics for the same
    seed), with ``events_processed = 0``.
    """
    from repro.simulation.simulator import SimulationReport, _record_simulation_metrics

    if num_requests < 1:
        raise SimulationError(f"num_requests must be >= 1, got {num_requests}")
    program = BroadcastProgram(
        allocation, bandwidth=bandwidth, bandwidths=bandwidths
    )
    generator = RequestGenerator(
        allocation.database,
        arrival_rate=arrival_rate,
        seed=seed,
        request_probabilities=request_probabilities,
    )
    with obs.span(
        "sim.run",
        backend="numpy",
        requests=num_requests,
        channels=allocation.num_channels,
    ) as span:
        arrivals, picks = generator.sample_batch(num_requests)
        item_ids = generator.item_ids
        waits = batched_waiting_times(program, item_ids, arrivals, picks)
        if waits.size and float(waits.min()) < 0:
            raise SimulationError(
                f"waiting time cannot be negative, got {float(waits.min())}"
            )

        # Group waits by item without a per-request Python loop: one
        # stable sort, then contiguous slices.  Statistics go through
        # the same summarize() (exact fsum) as the collector, so
        # ordering is moot.
        order = np.argsort(picks, kind="stable")
        sorted_picks = picks[order]
        sorted_waits = waits[order]
        boundaries = np.flatnonzero(np.diff(sorted_picks)) + 1
        group_starts = np.concatenate(([0], boundaries))
        per_item: Dict[str, SummaryStatistics] = {}
        for group in range(len(group_starts)):
            lo = int(group_starts[group])
            hi = (
                int(group_starts[group + 1])
                if group + 1 < len(group_starts)
                else len(sorted_waits)
            )
            item_id = item_ids[int(sorted_picks[lo])]
            per_item[item_id] = summarize(sorted_waits[lo:hi].tolist())

        report = SimulationReport(
            measured=summarize(waits.tolist()),
            analytical_waiting_time=average_waiting_time(
                allocation, bandwidth=bandwidth
            ),
            num_requests=int(num_requests),
            events_processed=0,
            per_item=per_item,
        )
        span.update(
            events_processed=report.events_processed,
            requests_served=report.num_requests,
            measured_mean=report.measured.mean,
        )
        _record_simulation_metrics(report, allocation)
    return report
