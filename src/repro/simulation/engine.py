"""A minimal, deterministic discrete-event simulation kernel.

Classic event-heap design: a priority queue of :class:`Event` objects,
popped in (time, priority, sequence) order, each invoking its callback.
Callbacks may schedule further events (at or after the current time).

The kernel enforces the two invariants everything downstream relies on:

* the clock never moves backwards, and
* event execution order is fully deterministic for a fixed schedule
  (stable tie-breaking via the sequence counter).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventPriority

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Event-driven simulation clock and scheduler.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(2.0, lambda: fired.append(engine.now))
    >>> _ = engine.schedule_at(1.0, lambda: fired.append(engine.now))
    >>> engine.run()
    2
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pending = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled (non-cancelled) events still queued.

        O(1): a live counter updated on schedule, cancel and pop, rather
        than a scan over the heap's lazy-deletion flags.
        """
        return self._pending

    def _note_cancel(self, _event: Event) -> None:
        """Hook installed on every scheduled event's ``cancel``."""
        self._pending -= 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.CONTROL,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies in the past or is not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            sequence=next(self._sequence),
            callback=callback,
            on_cancel=self._note_cancel,
        )
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.CONTROL,
    ) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        return self.schedule_at(self._now + delay, callback, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns false when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                # Already uncounted when cancel() fired.
                continue
            # Executed events can no longer be meaningfully cancelled;
            # detach the hook so a late cancel() can't skew the counter.
            event.on_cancel = None
            self._pending -= 1
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until exhaustion, a time horizon, or an event cap.

        Parameters
        ----------
        until:
            Stop before executing any event scheduled after this time;
            the clock is then advanced to ``until`` exactly.
        max_events:
            Execute at most this many events (guards against runaway
            self-scheduling loops in tests).

        Returns
        -------
        int
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed
