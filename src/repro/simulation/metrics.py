"""Measurement collection for broadcast simulations.

:class:`WaitingTimeCollector` accumulates per-request waiting times and
reports aggregate and per-item statistics, including normal-theory
confidence intervals — the quantities the validation suite compares
against the analytical :math:`W_b`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["SummaryStatistics", "WaitingTimeCollector"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Mean / deviation / CI summary of a sample.

    ``ci_halfwidth`` is the half-width of the normal-approximation
    confidence interval at the z-value supplied to ``summarize`` (1.96
    ⇒ 95%).  For samples of size < 2 the deviation and half-width are 0.
    """

    count: int
    mean: float
    std: float
    ci_halfwidth: float
    minimum: float
    maximum: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high


def summarize(samples: List[float], *, z_value: float = 1.96) -> SummaryStatistics:
    """Summarise a non-empty sample list."""
    count = len(samples)
    if count == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = math.fsum(samples) / count
    if count > 1:
        variance = math.fsum((x - mean) ** 2 for x in samples) / (count - 1)
        std = math.sqrt(variance)
        halfwidth = z_value * std / math.sqrt(count)
    else:
        std = 0.0
        halfwidth = 0.0
    return SummaryStatistics(
        count=count,
        mean=mean,
        std=std,
        ci_halfwidth=halfwidth,
        minimum=min(samples),
        maximum=max(samples),
    )


class WaitingTimeCollector:
    """Accumulates waiting-time observations from a simulation run."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._by_item: Dict[str, List[float]] = {}

    def record(self, item_id: str, waiting_time: float) -> None:
        """Record one completed request."""
        if waiting_time < 0:
            raise ValueError(
                f"waiting time cannot be negative, got {waiting_time}"
            )
        self._samples.append(waiting_time)
        self._by_item.setdefault(item_id, []).append(waiting_time)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def item_ids(self) -> Tuple[str, ...]:
        return tuple(self._by_item)

    def overall(self, *, z_value: float = 1.96) -> SummaryStatistics:
        """Summary over all requests — the empirical :math:`W_b`."""
        return summarize(self._samples, z_value=z_value)

    def for_item(
        self, item_id: str, *, z_value: float = 1.96
    ) -> Optional[SummaryStatistics]:
        """Summary for one item, or ``None`` if it was never requested."""
        samples = self._by_item.get(item_id)
        if not samples:
            return None
        return summarize(samples, z_value=z_value)
