"""(1, m) air indexing — the energy dimension of broadcasting.

The paper optimises *waiting time* only.  The classic companion concern
(Imielinski, Viswanathan & Badrinath, "Data on Air" — the paper's
reference [11]) is *tuning time*: how long the mobile device must
actively listen, which is what drains its battery.  With **(1, m)
indexing** the channel interleaves ``m`` copies of a directory (the
index) into each broadcast cycle; a client

1. listens until the next index block starts (active — it does not yet
   know the schedule),
2. reads the index (active),
3. **dozes** until its item's transmission starts (idle — this is the
   energy win), and
4. downloads the item (active).

Larger ``m`` shortens the active probe for an index (≈ cycle/2m), so
**tuning time decreases monotonically in m**, but each copy lengthens
the cycle, so **waiting time is U-shaped in m**: the probe shrinks
like ``D/(2m)`` while the cycle grows like ``m·I``.  Balancing the two
gives the classic optimum ``m* = sqrt(data_size / index_size)`` for the
expected *waiting* (access) time.

This module implements the indexed channel layout with *exact*
expectations (piecewise integration over the tune-in instant, no Monte
Carlo needed) plus per-request timing for the simulator.  Extension
beyond the paper (DESIGN.md §6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.item import DataItem
from repro.exceptions import SimulationError

__all__ = [
    "IndexedChannel",
    "IndexedTiming",
    "optimal_index_replication",
]


@dataclass(frozen=True)
class IndexedTiming:
    """Outcome of one indexed retrieval.

    Attributes
    ----------
    waiting_time:
        Tune-in to download completion (seconds) — the latency metric.
    tuning_time:
        Active-listening seconds within that window — the energy metric.
        Always ``<= waiting_time``; the difference is doze time.
    """

    waiting_time: float
    tuning_time: float

    @property
    def doze_time(self) -> float:
        return self.waiting_time - self.tuning_time


def optimal_index_replication(data_size: float, index_size: float) -> int:
    """The classic (1, m) rule of thumb: ``m* = sqrt(data/index)``.

    Minimises the expected *waiting* (access) time: with data payload
    ``D`` and one index copy of size ``I`` per segment, the expected
    wait is ≈ ``(D + mI)·(1/(2m) + 1/2)`` whose minimiser is
    ``sqrt(D/I)``.  (Tuning time, by contrast, decreases monotonically
    in ``m`` — more copies only help the probe.)  Returns the positive
    integer nearest to the continuous optimum (at least 1).
    """
    if data_size <= 0 or index_size <= 0:
        raise SimulationError(
            "data_size and index_size must be positive"
        )
    return max(1, round(math.sqrt(data_size / index_size)))


class IndexedChannel:
    """A cyclic broadcast channel with (1, m) interleaved indexing.

    Parameters
    ----------
    channel_id:
        Channel index within the program.
    items:
        Data items, transmitted in this order each cycle.
    bandwidth:
        Channel bandwidth in size units per second.
    replication:
        ``m`` — number of index copies per cycle.  ``m`` must not exceed
        the item count (each data segment holds at least one item).
    index_entry_size:
        Directory size contributed per item, in size units.  One full
        index occupies ``len(items) * index_entry_size`` units.

    Layout
    ------
    The cycle is ``[I][seg_1][I][seg_2]...[I][seg_m]`` where the data
    segments partition the item sequence into ``m`` nearly-equal-count
    contiguous runs.
    """

    def __init__(
        self,
        channel_id: int,
        items: Sequence[DataItem],
        bandwidth: float,
        *,
        replication: int = 1,
        index_entry_size: float = 0.1,
    ) -> None:
        if not items:
            raise SimulationError(
                f"channel {channel_id} has no items to broadcast"
            )
        if not (isinstance(bandwidth, (int, float)) and bandwidth > 0):
            raise SimulationError(
                f"bandwidth must be positive, got {bandwidth!r}"
            )
        if not 1 <= replication <= len(items):
            raise SimulationError(
                f"replication must be in [1, {len(items)}], got {replication}"
            )
        if index_entry_size <= 0:
            raise SimulationError(
                f"index_entry_size must be positive, got {index_entry_size}"
            )
        self.channel_id = channel_id
        self._items: Tuple[DataItem, ...] = tuple(items)
        self._bandwidth = float(bandwidth)
        self._replication = replication
        self._index_duration = (
            len(items) * index_entry_size / self._bandwidth
        )

        # Build the cycle layout: index starts and per-item slot starts.
        ids_seen = set()
        self._index_starts: List[float] = []
        self._slot_start: dict = {}
        self._slot_duration: dict = {}
        clock = 0.0
        segments = _split_evenly(list(items), replication)
        for segment in segments:
            self._index_starts.append(clock)
            clock += self._index_duration
            for item in segment:
                if item.item_id in ids_seen:
                    raise SimulationError(
                        f"item {item.item_id!r} appears twice on channel "
                        f"{channel_id}"
                    )
                ids_seen.add(item.item_id)
                self._slot_start[item.item_id] = clock
                duration = item.size / self._bandwidth
                self._slot_duration[item.item_id] = duration
                clock += duration
        self._cycle = clock

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    @property
    def items(self) -> Tuple[DataItem, ...]:
        return self._items

    @property
    def replication(self) -> int:
        return self._replication

    @property
    def cycle_length(self) -> float:
        """Cycle duration including the ``m`` index copies."""
        return self._cycle

    @property
    def index_duration(self) -> float:
        """Transmission time of one full index copy."""
        return self._index_duration

    @property
    def index_overhead(self) -> float:
        """Fraction of the cycle spent on index traffic."""
        return self._replication * self._index_duration / self._cycle

    def carries(self, item_id: str) -> bool:
        return item_id in self._slot_start

    # ------------------------------------------------------------------
    # Per-request timing
    # ------------------------------------------------------------------
    def retrieve(self, item_id: str, tune_in: float) -> IndexedTiming:
        """Timing of the indexed retrieval protocol for one request."""
        if item_id not in self._slot_start:
            raise SimulationError(
                f"channel {self.channel_id} does not carry {item_id!r}"
            )
        if tune_in < 0 or not math.isfinite(tune_in):
            raise SimulationError(
                f"tune_in must be finite and >= 0, got {tune_in!r}"
            )
        phase = tune_in % self._cycle
        # The modulo carries ~ulp(tune_in) of rounding error, so a
        # tune-in sitting right at an index start can land on either
        # side of it depending on how many whole cycles precede it —
        # which would break periodicity (retrieve(t) must equal
        # retrieve(t + cycle)).  Snap the phase onto a layout boundary
        # when it is within a cycle-relative tolerance.
        snap = 1e-9 * self._cycle
        if phase >= self._cycle - snap:
            phase = 0.0
        else:
            for boundary in self._index_starts:
                if abs(phase - boundary) <= snap:
                    phase = boundary
                    break
        base = tune_in - phase
        # 1. Active probe to the next index start.
        index_start = None
        for start in self._index_starts:
            if start >= phase:
                index_start = base + start
                break
        if index_start is None:
            index_start = base + self._cycle + self._index_starts[0]
        probe = index_start - tune_in
        # 2. Read the index.
        ready = index_start + self._index_duration
        # 3. Doze until the item's next transmission start >= ready
        #    (the index tells the client the whole schedule).
        slot = self._slot_start[item_id]
        cycles_needed = max(0, math.ceil((ready - slot) / self._cycle - 1e-12))
        start = slot + cycles_needed * self._cycle
        # 4. Download.
        duration = self._slot_duration[item_id]
        completion = start + duration
        tuning = probe + self._index_duration + duration
        return IndexedTiming(
            waiting_time=completion - tune_in, tuning_time=tuning
        )

    # ------------------------------------------------------------------
    # Exact expectations (uniform tune-in over one cycle)
    # ------------------------------------------------------------------
    def expected_timing(self, item_id: str) -> IndexedTiming:
        """Exact expectation of :meth:`retrieve` for uniform tune-in.

        Piecewise integration: between consecutive index starts, the
        request resolves to a *fixed* completion instant and a waiting
        time linear in the tune-in, so each interval contributes its
        midpoint value.
        """
        if item_id not in self._slot_start:
            raise SimulationError(
                f"channel {self.channel_id} does not carry {item_id!r}"
            )
        boundaries = list(self._index_starts) + [self._cycle]
        total_wait = 0.0
        total_tune = 0.0
        for left, right in zip(boundaries, boundaries[1:]):
            width = right - left
            if width <= 0:
                continue
            # Every tune-in in (left, right] probes to index at `right`
            # (possibly wrapping: right == cycle maps to index 0 of the
            # next cycle, same phase).  Evaluate at the midpoint — both
            # metrics are linear in t on the interval.
            midpoint = left + width / 2.0
            timing = self.retrieve(item_id, midpoint)
            total_wait += timing.waiting_time * width
            total_tune += timing.tuning_time * width
        return IndexedTiming(
            waiting_time=total_wait / self._cycle,
            tuning_time=total_tune / self._cycle,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexedChannel(id={self.channel_id}, m={self._replication}, "
            f"items={len(self._items)}, cycle={self._cycle:.6g}s)"
        )


def _split_evenly(items: List[DataItem], parts: int) -> List[List[DataItem]]:
    """Split a list into ``parts`` contiguous runs of near-equal count."""
    base, extra = divmod(len(items), parts)
    segments: List[List[DataItem]] = []
    cursor = 0
    for index in range(parts):
        length = base + (1 if index < extra else 0)
        segments.append(items[cursor: cursor + length])
        cursor += length
    return segments
