"""Adaptive broadcasting: re-estimate, re-allocate, repeat.

The paper generates one program from one static profile.  A deployed
server (its Figure 1) keeps collecting access patterns while interests
drift, and periodically regenerates the program.  This module simulates
that loop over epochs:

1. clients issue requests according to the *current true* popularity
   (which drifts per epoch);
2. the server measures waiting times under its current program and logs
   the requests;
3. at the epoch boundary it re-estimates the profile from the trace
   (:mod:`repro.workloads.estimator`) and re-runs the allocator.

Comparing the adaptive loop against a static program quantifies how
much the paper's fast allocator buys operationally: DRP-CDS is cheap
enough to re-run every epoch, which a GA-based GOPT would not be.

Extension beyond the paper (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.core.database import BroadcastDatabase
from repro.core.incremental import (
    DEFAULT_REGRESSION_GUARD,
    AllocationCache,
    IncrementalAllocator,
)
from repro.core.scheduler import Allocator
from repro.exceptions import SimulationError
from repro.simulation.metrics import SummaryStatistics, summarize
from repro.simulation.server import BroadcastProgram
from repro.workloads.estimator import (
    CountEstimator,
    DecayEstimator,
    estimate_database,
    profile_l1_error,
)
from repro.workloads.trace import synthesize_trace

__all__ = ["RotatingDrift", "EpochReport", "run_adaptive_simulation"]


class RotatingDrift:
    """Popularity drift by rank rotation.

    Each epoch, the popularity vector rotates by ``shift_per_epoch``
    positions over the catalogue: yesterday's hot items cool down, cold
    items heat up — a simple but harsh drift model (a rotation by N/2
    eventually inverts the profile).
    """

    def __init__(
        self, base_frequencies: Sequence[float], shift_per_epoch: int = 1
    ) -> None:
        if shift_per_epoch < 0:
            raise SimulationError(
                f"shift_per_epoch must be >= 0, got {shift_per_epoch}"
            )
        self._base = np.asarray(base_frequencies, dtype=np.float64)
        if self._base.ndim != 1 or len(self._base) == 0:
            raise SimulationError("base_frequencies must be a non-empty vector")
        self._shift = shift_per_epoch

    def probabilities(self, epoch: int) -> np.ndarray:
        """The true request distribution during ``epoch`` (0-based)."""
        if epoch < 0:
            raise SimulationError(f"epoch must be >= 0, got {epoch}")
        return np.roll(self._base, epoch * self._shift)


@dataclass
class EpochReport:
    """Measurements of one adaptation epoch.

    Attributes
    ----------
    epoch:
        0-based epoch index.
    measured:
        Waiting-time summary of this epoch's requests.
    cost_under_truth:
        Eq.-(3) cost of the epoch's allocation *evaluated against the
        true popularity* — the quantity the allocator would minimise if
        it knew the truth.
    profile_error:
        L1 distance between the profile the program was built from and
        the epoch's true distribution (0 = the server knew the truth).
    reallocated:
        Whether the program was regenerated before this epoch.
    cache_hit:
        True when the epoch boundary reused a previous program instead
        of searching: the estimator reported zero L1 drift, or the warm
        engine's allocation cache held the believed profile.
    warm_moves:
        CDS moves the warm-started refinement executed at the preceding
        epoch boundary (0 for cold/static/reused epochs).
    allocation_mode:
        How this epoch's program was obtained: ``"cold"``, ``"warm"``,
        ``"fallback"``, ``"cache"``, ``"reused"`` (zero-drift program
        reuse) or ``"static"`` (no adaptation requested).
    """

    epoch: int
    measured: SummaryStatistics
    cost_under_truth: float
    profile_error: float
    reallocated: bool
    cache_hit: bool = False
    warm_moves: int = 0
    allocation_mode: str = "cold"


def run_adaptive_simulation(
    database: BroadcastDatabase,
    allocator: Allocator,
    num_channels: int,
    *,
    epochs: int = 8,
    requests_per_epoch: int = 4000,
    drift: Optional[RotatingDrift] = None,
    estimator: "CountEstimator | DecayEstimator | None" = None,
    adapt: bool = True,
    bandwidth: float = DEFAULT_BANDWIDTH,
    seed: int = 0,
    warm_start: bool = False,
    cache: Optional[AllocationCache] = None,
    regression_guard: Optional[float] = DEFAULT_REGRESSION_GUARD,
) -> List[EpochReport]:
    """Simulate epochs of drifting demand with optional re-allocation.

    Parameters
    ----------
    database:
        The catalogue with its *initial* access profile; sizes are fixed
        throughout, frequencies drift.
    allocator:
        Any :class:`Allocator` — regenerates the program at each epoch
        boundary when ``adapt`` is true.
    num_channels:
        Channel count K.
    epochs / requests_per_epoch:
        Simulation horizon.
    drift:
        The popularity drift model; default rotates by one rank per
        epoch.
    estimator:
        Frequency estimator applied to the previous epoch's trace;
        default :class:`CountEstimator` (Laplace-smoothed counts).
    adapt:
        False freezes the initial program — the static baseline.
    bandwidth:
        Channel bandwidth ``b``.
    seed:
        Master seed; per-epoch streams derive from it.
    warm_start:
        Route epoch-boundary re-allocations through an
        :class:`~repro.core.incremental.IncrementalAllocator`: CDS is
        re-seeded from the previous epoch's allocation (guarded by
        ``regression_guard``) instead of rebuilding from scratch, and an
        allocation cache short-circuits recurring believed profiles.
        The engine's pipeline is DRP+CDS regardless of ``allocator``
        (its first build is a cold DRP+CDS run).  Off by default — the
        cold loop reproduces the pre-existing behaviour bit for bit.
    cache:
        Optional :class:`~repro.core.incremental.AllocationCache` to
        consult/populate across epochs (and across calls, when shared);
        only used with ``warm_start``.  Default: a fresh private cache.
    regression_guard:
        Warm-start fallback threshold (see
        :func:`~repro.core.incremental.warm_start_refine`); only used
        with ``warm_start``.

    Returns
    -------
    list of EpochReport, one per epoch.

    Notes
    -----
    Independent of ``warm_start``, an epoch boundary whose re-estimated
    profile shows **zero** L1 drift against the current believed profile
    reuses the previous program verbatim (the allocator is
    deterministic, so rebuilding could only reproduce it); the epoch is
    reported with ``allocation_mode="reused"``, ``cache_hit=True`` and
    counted on the ``incremental.cache_hits`` metrics counter.
    """
    if epochs < 1:
        raise SimulationError(f"epochs must be >= 1, got {epochs}")
    if requests_per_epoch < 1:
        raise SimulationError(
            f"requests_per_epoch must be >= 1, got {requests_per_epoch}"
        )
    if drift is None:
        drift = RotatingDrift(
            [item.frequency for item in database.items], shift_per_epoch=1
        )
    if estimator is None:
        estimator = CountEstimator()

    sizes: Dict[str, float] = {
        item.item_id: item.size for item in database.items
    }
    ids = list(database.item_ids)
    believed = database  # the profile the current program was built from
    engine: Optional[IncrementalAllocator] = None
    if warm_start:
        engine = IncrementalAllocator(
            num_channels,
            regression_guard=regression_guard,
            cache=cache if cache is not None else AllocationCache(),
        )
        allocation: ChannelAllocation = engine.reallocate(believed).allocation
    else:
        allocation = allocator.allocate(believed, num_channels).allocation
    # The program is rebuilt only when the allocation changes — an
    # unchanged epoch reuses the previous program verbatim.
    program = BroadcastProgram(allocation, bandwidth=bandwidth)

    reports: List[EpochReport] = []
    reallocated = True  # the initial build counts as a (re)allocation
    cache_hit = False
    warm_moves = 0
    mode = "cold" if adapt else "static"
    for epoch in range(epochs):
        truth = drift.probabilities(epoch)
        trace = synthesize_trace(
            database,
            requests_per_epoch,
            seed=seed + epoch,
            probabilities=truth.tolist(),
        )
        waits = [
            program.waiting_time(record.item_id, record.timestamp)
            for record in trace
        ]
        believed_profile = {
            item.item_id: item.frequency for item in believed.items
        }
        true_profile = dict(zip(ids, truth.tolist()))
        reports.append(
            EpochReport(
                epoch=epoch,
                measured=summarize(waits),
                cost_under_truth=_cost_under_profile(allocation, true_profile),
                profile_error=profile_l1_error(believed_profile, true_profile),
                reallocated=reallocated,
                cache_hit=cache_hit,
                warm_moves=warm_moves,
                allocation_mode=mode,
            )
        )
        registry = obs.get_metrics()
        if registry.enabled:
            report = reports[-1]
            registry.counter("adaptive.epochs").inc()
            registry.counter("adaptive.mode", mode=mode).inc()
            if reallocated:
                registry.counter("adaptive.reallocations").inc()
            registry.gauge("adaptive.epoch").set(epoch)
            registry.gauge("adaptive.cost_under_truth").set(
                report.cost_under_truth
            )
            registry.gauge("adaptive.profile_error").set(report.profile_error)
            registry.gauge("adaptive.measured_wait_mean").set(
                report.measured.mean
            )
        reallocated = False
        cache_hit = False
        warm_moves = 0
        if adapt and epoch + 1 < epochs:
            estimated = estimate_database(trace, sizes, estimator=estimator)
            estimated_profile = {
                item.item_id: item.frequency for item in estimated.items
            }
            if profile_l1_error(believed_profile, estimated_profile) == 0.0:
                # Zero drift: the deterministic allocator would
                # reproduce the current program — skip the rebuild and
                # count the reuse as a cache hit.
                cache_hit = True
                mode = "reused"
                registry = obs.get_metrics()
                if registry.enabled:
                    registry.counter("incremental.cache_hits").inc()
                if engine is not None:
                    engine.stats.cache_hits += 1
            else:
                believed = estimated
                if engine is not None:
                    result = engine.reallocate(believed)
                    allocation = result.allocation
                    mode = result.mode
                    warm_moves = result.warm_moves
                    cache_hit = result.mode == "cache"
                else:
                    allocation = allocator.allocate(
                        believed, num_channels
                    ).allocation
                    mode = "cold"
                program = BroadcastProgram(allocation, bandwidth=bandwidth)
                reallocated = True
    return reports


def _cost_under_profile(
    allocation: ChannelAllocation, profile: Dict[str, float]
) -> float:
    """Eq.-(3) cost of an allocation under a substituted frequency map."""
    total = 0.0
    for group in allocation.channels:
        freq = sum(profile[item.item_id] for item in group)
        size = sum(item.size for item in group)
        total += freq * size
    return total
