"""Discrete-event broadcast simulation substrate.

Validates the analytical waiting-time model end-to-end: a deterministic
event kernel drives cyclic broadcast channels under a Poisson client
request stream and measures actual waiting times.
"""

from repro.simulation.adaptive import (
    EpochReport,
    RotatingDrift,
    run_adaptive_simulation,
)
from repro.simulation.cache import (
    CachePolicy,
    CacheReport,
    ClientCache,
    LFUPolicy,
    LRUPolicy,
    PIXPolicy,
    simulate_with_cache,
)
from repro.simulation.channel import BroadcastChannel
from repro.simulation.client import Request, RequestGenerator
from repro.simulation.disks import (
    MultiScheduleChannel,
    broadcast_disk_schedule,
    disks_from_allocation,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventPriority
from repro.simulation.indexing import (
    IndexedChannel,
    IndexedTiming,
    optimal_index_replication,
)
from repro.simulation.replication import (
    ReplicatedProgram,
    replicate_hot_items,
    simulate_replicated_program,
)
from repro.simulation.queries import (
    QueryRetrieval,
    retrieve_query,
    simulate_query_workload,
)
from repro.simulation.ondemand import (
    FCFSPolicy,
    MRFPolicy,
    OnDemandReport,
    RxWPolicy,
    SizeAwareRxWPolicy,
    compare_push_pull,
    simulate_on_demand,
)
from repro.simulation.metrics import (
    SummaryStatistics,
    WaitingTimeCollector,
    summarize,
)
from repro.simulation.batched import (
    batched_waiting_times,
    run_batched_simulation,
)
from repro.simulation.server import BroadcastProgram
from repro.simulation.simulator import SimulationReport, run_broadcast_simulation

__all__ = [
    "Event",
    "EventPriority",
    "SimulationEngine",
    "BroadcastChannel",
    "BroadcastProgram",
    "Request",
    "RequestGenerator",
    "WaitingTimeCollector",
    "SummaryStatistics",
    "summarize",
    "SimulationReport",
    "run_broadcast_simulation",
    "batched_waiting_times",
    "run_batched_simulation",
    "RotatingDrift",
    "EpochReport",
    "run_adaptive_simulation",
    "IndexedChannel",
    "IndexedTiming",
    "optimal_index_replication",
    "QueryRetrieval",
    "retrieve_query",
    "simulate_query_workload",
    "ReplicatedProgram",
    "replicate_hot_items",
    "simulate_replicated_program",
    "CachePolicy",
    "LRUPolicy",
    "LFUPolicy",
    "PIXPolicy",
    "ClientCache",
    "CacheReport",
    "simulate_with_cache",
    "FCFSPolicy",
    "MRFPolicy",
    "RxWPolicy",
    "SizeAwareRxWPolicy",
    "OnDemandReport",
    "simulate_on_demand",
    "compare_push_pull",
    "MultiScheduleChannel",
    "broadcast_disk_schedule",
    "disks_from_allocation",
]
