"""Command-line interface: ``repro-broadcast`` / ``python -m repro``.

Subcommands
-----------
``list``
    Show registered algorithms and reproducible figures.
``example``
    Walk the paper's worked example (Tables 2–4) step by step.
``allocate``
    Generate a workload, run one or more algorithms, compare results
    (``--stats`` adds per-algorithm iteration/counter detail).
``figure`` / ``sweep``
    Regenerate the data behind one of the paper's figures (``sweep``
    takes the figure as ``--figure 2`` instead of a positional id).
``simulate``
    Validate an allocation against the analytical model with the
    discrete-event simulator.
``shard``
    Sharded, resumable sweep execution: ``compile`` a shard manifest,
    ``run`` each shard as an independent (killable, resumable) OS
    process against a shared results directory, ``status`` the stores,
    ``merge`` them into rows identical to a serial run.
``trace-convert``
    Convert a ``--trace`` JSONL file to Chrome ``trace_event`` JSON.
``bench-check``
    Gate ``BENCH_*.json`` runs against the rolling benchmark history
    (``benchmarks/results/history.jsonl``), failing on regressions.

Observability
-------------
Every run-producing subcommand accepts ``--trace PATH`` and
``--metrics [PATH]`` (or the ``REPRO_TRACE`` / ``REPRO_METRICS``
environment variables).  When enabled, the run's spans and metric
snapshot are exported on exit — traces as JSONL when ``PATH`` ends in
``.jsonl``, Chrome ``trace_event`` JSON otherwise — together with a
``*.manifest.json`` provenance record.  Progress lines go to stderr so
stdout stays machine-parseable.

Live telemetry rides on the same flags: ``--metrics-port`` serves an
OpenMetrics ``/metrics`` endpoint for the duration of the run,
``--metrics-stream`` appends windowed JSONL summaries, and
``--profile`` attaches the statistical sampling profiler (folded
stacks on exit).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence, Tuple

import repro.baselines  # noqa: F401  (registers baseline allocators)
from repro import obs
from repro.analysis.tables import format_float, format_table
from repro.analysis.theory import waiting_time_lower_bound
from repro.core.cost import DEFAULT_BANDWIDTH, average_waiting_time
from repro.core.drp import drp_allocate
from repro.core.cds import cds_refine
from repro.core.scheduler import available_allocators, make_allocator
from repro.experiments.figures import (
    FIGURE_METRICS,
    FIGURES,
    figure_config,
    run_figure,
)
from repro.simulation.simulator import run_broadcast_simulation
from repro.workloads.generator import WorkloadSpec, generate_database
from repro.workloads.paper_profile import PAPER_NUM_CHANNELS, paper_database

__all__ = ["main", "build_parser"]


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics`` observability flags."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record tracing spans and write them here on exit "
            "(.jsonl = one span per line; any other extension = Chrome "
            "trace_event JSON for chrome://tracing / Perfetto)"
        ),
    )
    group.add_argument(
        "--metrics",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "record counters/gauges/histograms and write the JSON "
            "snapshot here; with no PATH, record in-process only (for "
            "--metrics-port / --metrics-stream)"
        ),
    )
    group.add_argument(
        "--trace-memory",
        action="store_true",
        help="also record tracemalloc peak memory per span (slower)",
    )
    group.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live OpenMetrics text at http://127.0.0.1:PORT/metrics "
            "(plus /health) for the duration of the run; 0 picks a free "
            "port (also $REPRO_METRICS_PORT); implies metrics recording"
        ),
    )
    group.add_argument(
        "--metrics-stream",
        default=None,
        metavar="PATH",
        help=(
            "append a windowed JSONL metrics summary to PATH every "
            "--metrics-interval seconds — the scrape-free live fallback "
            "(also $REPRO_METRICS_STREAM); implies metrics recording"
        ),
    )
    group.add_argument(
        "--metrics-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="tick period for --metrics-stream (default: 1.0)",
    )
    group.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help=(
            "attach the statistical sampling profiler and write "
            "collapsed/folded stacks to PATH on exit (flamegraph.pl / "
            "speedscope compatible; also $REPRO_PROFILE)"
        ),
    )


def _add_figure_arguments(parser: argparse.ArgumentParser) -> None:
    """Options shared by the ``figure`` and ``sweep`` subcommands."""
    parser.add_argument(
        "--replications", type=int, default=None, help="override replications"
    )
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "fan (sweep value x replication x algorithm) cells out over "
            "this many worker processes ('auto' = one per CPU; default: "
            "serial, or $REPRO_WORKERS when set); results are identical "
            "to a serial run"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help=(
            "with --workers >= 2: record any cell slower than this many "
            "seconds as an error instead of waiting forever"
        ),
    )
    parser.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "seed DRP-CDS cells from the nearest finished sweep "
            "neighbour's allocation (replications reuse replication 0); "
            "identical for any --workers count, but costs may differ "
            "slightly from a cold sweep within the warm-start guard"
        ),
    )
    parser.add_argument("--csv", default=None, help="write rows to CSV file")
    parser.add_argument("--json", default=None, help="write result to JSON file")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also sketch the series as an ASCII chart",
    )


def _normalize_figure_id(value: str) -> str:
    """Accept ``2``, ``fig2`` or ``figure2`` for the paper's figure ids."""
    candidate = value.strip().lower()
    if candidate in FIGURES:
        return candidate
    for prefix in ("fig", "figure"):
        if candidate.startswith(prefix):
            candidate = candidate[len(prefix):]
            break
    candidate = f"figure{candidate}"
    if candidate in FIGURES:
        return candidate
    known = ", ".join(sorted(FIGURES))
    raise argparse.ArgumentTypeError(
        f"unknown figure {value!r}; known: {known}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-broadcast",
        description=(
            "Diverse data broadcasting channel allocation "
            "(reproduction of Hung & Chen, ICDCS 2005)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list algorithms and figures")

    subparsers.add_parser(
        "example", help="walk the paper's worked example (Tables 2-4)"
    )

    allocate = subparsers.add_parser(
        "allocate", help="run algorithms on a synthetic workload"
    )
    allocate.add_argument("--items", type=int, default=120, help="N (items)")
    allocate.add_argument("--channels", type=int, default=7, help="K (channels)")
    allocate.add_argument("--skewness", type=float, default=0.8, help="Zipf θ")
    allocate.add_argument(
        "--diversity", type=float, default=1.5, help="size diversity Φ"
    )
    allocate.add_argument("--seed", type=int, default=0, help="workload seed")
    allocate.add_argument(
        "--bandwidth", type=float, default=DEFAULT_BANDWIDTH, help="bandwidth b"
    )
    allocate.add_argument(
        "--algorithms",
        nargs="+",
        default=["vfk", "drp", "drp-cds", "gopt"],
        help="registered algorithm names",
    )
    allocate.add_argument(
        "--stats",
        action="store_true",
        help=(
            "also print per-algorithm work counters (DRP splits/heap "
            "traffic, CDS moves/Δc evaluations/improvement)"
        ),
    )
    allocate.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "route algorithms through an allocation cache keyed by the "
            "workload fingerprint (seed, N, K, algorithm): repeated "
            "algorithm names become cache hits; --stats reports "
            "hits/misses"
        ),
    )

    figure = subparsers.add_parser(
        "figure", help="regenerate a paper figure's data"
    )
    figure.add_argument(
        "figure_id", choices=sorted(FIGURES), help="which figure"
    )
    _add_figure_arguments(figure)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a figure sweep (like `figure`, with --figure 2 syntax)",
    )
    sweep.add_argument(
        "--figure",
        dest="figure_id",
        type=_normalize_figure_id,
        required=True,
        metavar="N",
        help="paper figure to sweep (2, fig2 and figure2 all work)",
    )
    _add_figure_arguments(sweep)

    gap = subparsers.add_parser(
        "gap", help="true optimality gaps vs brute-force ground truth"
    )
    gap.add_argument("--items", type=int, default=10, help="N per instance")
    gap.add_argument("--channels", type=int, default=3, help="K per instance")
    gap.add_argument(
        "--instances", type=int, default=10, help="number of instances"
    )
    gap.add_argument(
        "--algorithms",
        nargs="+",
        default=None,
        help="algorithms to measure (default: paper line-up + contiguous-dp)",
    )
    gap.add_argument(
        "--workers",
        default=None,
        help="solve independent instances in this many worker processes",
    )

    simulate = subparsers.add_parser(
        "simulate", help="validate an allocation with the event simulator"
    )
    simulate.add_argument("--items", type=int, default=60)
    simulate.add_argument("--channels", type=int, default=5)
    simulate.add_argument("--skewness", type=float, default=0.8)
    simulate.add_argument("--diversity", type=float, default=1.5)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--requests", type=int, default=20000)
    simulate.add_argument("--algorithm", default="drp-cds")
    simulate.add_argument(
        "--backend",
        choices=("python", "numpy", "auto"),
        default="python",
        help=(
            "'python' = discrete-event engine; 'numpy'/'auto' = batched "
            "vectorized fast path (identical metrics, no events)"
        ),
    )

    adaptive = subparsers.add_parser(
        "adaptive",
        help="simulate drifting demand: static vs adaptive re-allocation",
    )
    adaptive.add_argument("--items", type=int, default=60)
    adaptive.add_argument("--channels", type=int, default=6)
    adaptive.add_argument("--epochs", type=int, default=6)
    adaptive.add_argument("--requests", type=int, default=3000)
    adaptive.add_argument(
        "--shift", type=int, default=10,
        help="popularity rank rotation per epoch",
    )
    adaptive.add_argument("--seed", type=int, default=0)
    adaptive.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "re-seed CDS from the previous epoch's allocation at each "
            "epoch boundary (incremental engine with regression guard "
            "and allocation cache) instead of re-running DRP+CDS cold"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the live broadcast service: sketch-based streaming "
        "estimation, epoch warm re-allocation, cycle-aligned handover",
    )
    serve.add_argument("--items", type=int, default=60)
    serve.add_argument("--channels", type=int, default=6)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--epoch-seconds", type=float, default=60.0,
        help="epoch length in stream time (default: 60)",
    )
    serve.add_argument(
        "--sketch-width", type=int, default=1024,
        help="count-min sketch counters per row (default: 1024)",
    )
    serve.add_argument(
        "--sketch-depth", type=int, default=4,
        help="count-min sketch hash rows (default: 4)",
    )
    serve.add_argument(
        "--half-life", type=float, default=None,
        help="sketch decay half-life in stream seconds "
        "(default: 2 x epoch length)",
    )
    serve.add_argument(
        "--conservative",
        action="store_true",
        help="use the conservative-update sketch rule (tighter estimates)",
    )
    serve.add_argument(
        "--exact",
        action="store_true",
        help="exact-counter oracle mode: estimate from true decayed "
        "counts (O(items) state; the baseline the sketch is judged "
        "against)",
    )
    serve.add_argument(
        "--smoothing", type=float, default=1.0,
        help="Laplace pseudo-count per catalogue item (default: 1.0)",
    )
    serve.add_argument(
        "--replay", default=None, metavar="PATH",
        help="ingest a JSONL request trace ({\"t\": ..., \"id\": ...} "
        "rows) instead of generating a drifting stream",
    )
    serve.add_argument(
        "--record", default=None, metavar="PATH",
        help="tee the ingested stream to a JSONL file (e.g. generate a "
        "replay input for a later run)",
    )
    serve.add_argument(
        "--max-epochs", type=int, default=None,
        help="stop after this many epochs (default: run the stream dry; "
        "generated streams default to 20 epochs)",
    )
    serve.add_argument(
        "--requests-per-epoch", type=int, default=2000,
        help="generated-stream request volume per epoch (default: 2000)",
    )
    serve.add_argument(
        "--shift", type=int, default=10,
        help="generated-stream popularity rank rotation per epoch",
    )
    serve.add_argument(
        "--pace",
        action="store_true",
        help="replay in real time (sleep to each record's stream time) "
        "instead of ingesting as fast as possible",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the epoch reports as a JSON document on stdout",
    )

    hetero = subparsers.add_parser(
        "hetero",
        help="allocate onto channels with unequal bandwidths",
    )
    hetero.add_argument("--items", type=int, default=90)
    hetero.add_argument(
        "--bandwidths",
        nargs="+",
        type=float,
        default=[25.0, 10.0, 10.0, 5.0, 5.0, 5.0],
        help="per-channel bandwidths (defines K)",
    )
    hetero.add_argument("--seed", type=int, default=0)

    report = subparsers.add_parser(
        "report",
        help="run the full reproduction and emit a markdown report",
    )
    report.add_argument(
        "--replications", type=int, default=None,
        help="override figure replications (default: paper settings)",
    )
    report.add_argument(
        "--workers",
        default=None,
        help="worker processes per figure sweep (see `figure --workers`)",
    )
    report.add_argument(
        "--output", default=None, help="write the markdown to this file"
    )
    report.add_argument("--quiet", action="store_true")

    index = subparsers.add_parser(
        "index",
        help="(1, m) indexing trade-off on the hottest channel",
    )
    index.add_argument("--items", type=int, default=120)
    index.add_argument("--channels", type=int, default=6)
    index.add_argument(
        "--entry-size", type=float, default=0.25,
        help="index directory units per item",
    )
    index.add_argument("--seed", type=int, default=0)

    convert = subparsers.add_parser(
        "trace-convert",
        help="convert a JSONL trace to Chrome trace_event JSON",
    )
    convert.add_argument("input", help="JSONL trace written by --trace")
    convert.add_argument(
        "output",
        nargs="?",
        default=None,
        help="Chrome JSON destination (default: input with .json suffix)",
    )

    verify = subparsers.add_parser(
        "verify",
        help="differential verification: fuzz invariants, oracles and "
        "metamorphic relations, or replay serialized failures",
    )
    verify.add_argument(
        "--fuzz",
        action="store_true",
        help="run the seeded metamorphic fuzzer",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--budget", type=int, default=200,
        help="number of generated cases (default: 200)",
    )
    verify.add_argument(
        "--failures-dir", default=None,
        help="directory for shrunk failure repros "
        "(default: verify_failures/)",
    )
    verify.add_argument(
        "--checks",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict to these checker names (see --list-checks)",
    )
    verify.add_argument(
        "--inject-bug",
        default=None,
        metavar="NAME",
        help="swap in a deliberately broken implementation to prove the "
        "harness catches it (e.g. delta-sign)",
    )
    verify.add_argument(
        "--replay",
        nargs="+",
        default=None,
        metavar="FILE",
        help="re-run serialized failure file(s) instead of fuzzing",
    )
    verify.add_argument(
        "--list-checks",
        action="store_true",
        help="print the checker catalogue and exit",
    )
    verify.add_argument("--quiet", action="store_true")

    shard = subparsers.add_parser(
        "shard",
        help="sharded, resumable sweep execution: compile a manifest, "
        "run shards as independent processes, merge their stores",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_compile = shard_sub.add_parser(
        "compile",
        help="partition a figure sweep into shards and write manifest.json",
    )
    shard_compile.add_argument(
        "--figure",
        dest="figure_id",
        type=_normalize_figure_id,
        required=True,
        metavar="N",
        help="paper figure to shard (2, fig2 and figure2 all work)",
    )
    shard_compile.add_argument(
        "--shards", type=int, default=2, help="number of shards (default: 2)"
    )
    shard_compile.add_argument(
        "--replications", type=int, default=None, help="override replications"
    )
    shard_compile.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="record the warm-start seed DAG in the manifest; shards "
        "consume each other's replication-0 seeds across boundaries",
    )
    shard_compile.add_argument(
        "--output",
        default="manifest.json",
        metavar="PATH",
        help="manifest destination (default: manifest.json)",
    )

    shard_run = shard_sub.add_parser(
        "run", help="execute one shard of a compiled manifest, resumably"
    )
    shard_run.add_argument("manifest", help="manifest.json from `shard compile`")
    shard_run.add_argument(
        "--shard", type=int, required=True, metavar="I", help="shard index"
    )
    shard_run.add_argument(
        "--results-dir",
        default="results",
        metavar="DIR",
        help="shared store directory (default: results/)",
    )
    shard_run.add_argument(
        "--workers",
        default=None,
        help="worker processes within this shard (see `figure --workers`)",
    )
    shard_run.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="with --workers >= 2: per-cell timeout in seconds",
    )
    shard_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="stop after computing this many cells (partial run; resume "
        "later with the same command)",
    )
    shard_run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )

    shard_merge = shard_sub.add_parser(
        "merge", help="assemble all shard stores into one result"
    )
    shard_merge.add_argument("manifest")
    shard_merge.add_argument("--results-dir", default="results", metavar="DIR")
    shard_merge.add_argument("--csv", default=None, help="write rows to CSV")
    shard_merge.add_argument(
        "--json", default=None, help="write result to JSON"
    )
    shard_merge.add_argument(
        "--diff-serial",
        action="store_true",
        help="also run the sweep serially in-process and fail unless the "
        "merged rows are identical (elapsed-time aggregates excepted)",
    )
    shard_merge.add_argument("--quiet", action="store_true")

    shard_status_p = shard_sub.add_parser(
        "status", help="per-shard completion summary (read-only)"
    )
    shard_status_p.add_argument("manifest")
    shard_status_p.add_argument(
        "--results-dir", default="results", metavar="DIR"
    )

    for shard_parser in (shard_compile, shard_run, shard_merge):
        _add_obs_arguments(shard_parser)

    bench_check = subparsers.add_parser(
        "bench-check",
        help="append BENCH_*.json runs to the benchmark history and fail "
        "when a tracked metric regresses past the threshold",
    )
    bench_check.add_argument(
        "bench",
        nargs="*",
        default=None,
        metavar="BENCH_FILE",
        help="benchmark payloads to check (default: BENCH_*.json in cwd)",
    )
    bench_check.add_argument(
        "--against",
        choices=("history",),
        default="history",
        help="baseline source (only 'history' is implemented)",
    )
    bench_check.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="history JSONL file (default: benchmarks/results/history.jsonl)",
    )
    bench_check.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression tolerance (default: 0.10 = 10%%)",
    )
    bench_check.add_argument(
        "--window",
        type=int,
        default=5,
        help="rolling-baseline window: median of the last N matching "
        "history records (default: 5)",
    )
    bench_check.add_argument(
        "--no-append",
        action="store_true",
        help="check only; do not record these runs into the history",
    )

    # Every run-producing subcommand takes the same observability flags;
    # trace-convert and bench-check only transform existing files, so
    # they stay bare.  `shard` is a command group — its run-producing
    # sub-subcommands got the flags individually above.
    for name, subparser in subparsers.choices.items():
        if name not in ("trace-convert", "bench-check", "shard"):
            _add_obs_arguments(subparser)

    return parser


def _cmd_list() -> int:
    print("Registered algorithms:")
    for name in sorted(available_allocators()):
        print(f"  {name}")
    print()
    print("Reproducible figures:")
    for figure_id in sorted(FIGURES):
        config = figure_config(figure_id)
        print(f"  {figure_id}: {config.description}")
    return 0


def _cmd_example() -> int:
    database = paper_database()
    print("Paper worked example (Tables 2-4): N=15 items, K=5 channels\n")
    rows = [
        (item.item_id, item.frequency, item.size, item.benefit_ratio)
        for item in database.sorted_by_benefit_ratio()
    ]
    print(
        format_table(
            ["item", "freq", "size", "benefit ratio"],
            rows,
            title="Table 2 profile (sorted by benefit ratio)",
        )
    )
    print()
    result = drp_allocate(
        database, PAPER_NUM_CHANNELS, split_policy="max-reduction", trace=True
    )
    for snapshot in result.snapshots:
        print(f"DRP iteration {snapshot.iteration}:")
        for index, (group, cost) in enumerate(
            zip(snapshot.groups, snapshot.costs)
        ):
            marker = " <- split next" if index == snapshot.split_group else ""
            print(
                f"  group {index + 1}: {{{', '.join(group)}}} "
                f"cost={format_float(cost, precision=2)}{marker}"
            )
    print(f"\nDRP cost: {format_float(result.cost, precision=2)} (paper: 24.09)")
    refined = cds_refine(result.allocation)
    print("\nCDS moves:")
    for move in refined.moves:
        print(
            f"  move {move.item_id}: group {move.origin + 1} -> "
            f"group {move.destination + 1}  "
            f"delta={format_float(move.delta, precision=2)}  "
            f"cost={format_float(move.cost_after, precision=2)}"
        )
    print(f"\nCDS cost: {format_float(refined.cost, precision=2)} (paper: 22.29)")
    print("\nFinal allocation:")
    for index, group in enumerate(refined.allocation.as_id_lists()):
        print(f"  channel {index + 1}: {{{', '.join(group)}}}")
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_items=args.items,
        skewness=args.skewness,
        diversity=args.diversity,
        seed=args.seed,
    )
    database = generate_database(spec)
    print(
        f"Workload: N={args.items}, K={args.channels}, θ={args.skewness}, "
        f"Φ={args.diversity}, seed={args.seed}"
    )
    bound = waiting_time_lower_bound(
        database, args.channels, bandwidth=args.bandwidth
    )
    cache = None
    if getattr(args, "warm_start", False):
        from repro.core.incremental import AllocationCache

        cache = AllocationCache()
    rows = []
    outcomes = []
    for name in args.algorithms:
        outcome = _allocate_one(
            name, database, args.channels, args.seed, cache
        )
        outcomes.append(outcome)
        rows.append(
            (
                name,
                outcome.cost,
                average_waiting_time(
                    outcome.allocation, bandwidth=args.bandwidth
                ),
                outcome.elapsed_seconds * 1000.0,
            )
        )
    print(
        format_table(
            ["algorithm", "cost", "waiting time (s)", "exec time (ms)"],
            rows,
        )
    )
    print(f"\nanalytical waiting-time lower bound: {format_float(bound)}")
    if args.stats:
        print()
        _print_allocate_stats(outcomes)
        if cache is not None:
            stats = cache.stats()
            print(
                f"\nallocation cache: {stats['hits']} hits, "
                f"{stats['misses']} misses, {stats['entries']} entries"
            )
    return 0


def _allocate_one(name, database, num_channels, seed, cache):
    """Run one algorithm, consulting the allocation cache when enabled.

    The cache is keyed by the workload fingerprint (seed, N, K,
    algorithm) — the tuple that deterministically generated the
    database — so a repeated algorithm name returns the stored
    allocation without re-searching.
    """
    from repro.core.cost import allocation_cost
    from repro.core.incremental import workload_fingerprint
    from repro.core.scheduler import AllocationOutcome

    key = None
    if cache is not None:
        key = workload_fingerprint(
            num_items=len(database),
            num_channels=num_channels,
            seed=seed,
            algorithm=name,
        )
        compact = cache.get(key)
        if compact is not None and compact.compatible_with(
            database, num_channels
        ):
            start = time.perf_counter()
            allocation = compact.to_allocation(database)
            return AllocationOutcome(
                allocation=allocation,
                cost=allocation_cost(allocation),
                elapsed_seconds=time.perf_counter() - start,
                algorithm=name,
                metadata={"cache_hit": True},
            )
    allocator = make_allocator(name)
    outcome = allocator.allocate(database, num_channels)
    if cache is not None and key is not None:
        cache.put(key, outcome.allocation, cost=outcome.cost)
    return outcome


#: ``allocate --stats`` columns: (metadata key, printed label).
_STATS_FIELDS = (
    ("drp_iterations", "DRP iterations"),
    ("drp_splits_evaluated", "DRP splits evaluated"),
    ("drp_heap_pushes", "DRP heap pushes"),
    ("drp_heap_pops", "DRP heap pops"),
    ("drp_cost", "DRP cost (pre-CDS)"),
    ("cds_moves", "CDS moves"),
    ("cds_delta_evaluations", "CDS Δc evaluations"),
    ("cds_improvement", "CDS improvement"),
    ("cds_converged", "CDS converged"),
)


def _print_allocate_stats(outcomes) -> None:
    """One work-counter table per algorithm that reported any metadata."""
    print("Per-algorithm statistics:")
    for outcome in outcomes:
        reported = [
            (label, outcome.metadata[key])
            for key, label in _STATS_FIELDS
            if key in outcome.metadata
        ]
        extras = sorted(
            set(outcome.metadata) - {key for key, _ in _STATS_FIELDS}
        )
        reported.extend((key, outcome.metadata[key]) for key in extras)
        if not reported:
            print(f"  {outcome.algorithm}: (no statistics reported)")
            continue
        print(f"  {outcome.algorithm}:")
        for label, value in reported:
            if isinstance(value, float):
                value = format_float(value, precision=4)
            print(f"    {label}: {value}")


def _cmd_figure(args: argparse.Namespace) -> int:
    # Progress goes through the stderr logger so stdout stays a clean,
    # machine-parseable table (satisfying `repro figure ... > data.txt`).
    progress = None if args.quiet else obs.log.progress
    config, result = run_figure(
        args.figure_id,
        replications=args.replications,
        workers=args.workers,
        cell_timeout=args.cell_timeout,
        warm_start=args.warm_start,
        progress=progress,
    )
    print()
    for error in result.errors:
        print(
            f"cell error: {config.sweep_parameter}={error.sweep_value:g} "
            f"{error.algorithm} rep {error.replication}: {error.message}"
        )
    if result.errors:
        print()
    metric = FIGURE_METRICS[args.figure_id]
    print(result.to_text(metric))
    if "gopt" in result.algorithms and metric == "mean_waiting_time":
        from repro.analysis.summary import summarize_experiment

        print("\ngap vs GOPT (mean over sweep):")
        for summary in summarize_experiment(result, reference="gopt"):
            if summary.algorithm == "gopt":
                continue
            print(
                f"  {summary.algorithm}: {summary.mean_gap_percent:+.2f}% "
                f"(worst {summary.max_gap * 100:+.2f}%)"
            )
    if args.chart:
        from repro.analysis.charts import grouped_bar_chart

        series = {
            algorithm: [v for _, v in result.series(algorithm, metric)]
            for algorithm in result.algorithms
        }
        labels = [
            f"{config.sweep_parameter}={value:g}"
            for value in result.sweep_values()
        ]
        print()
        print(grouped_bar_chart(labels, series, title=f"{args.figure_id} shape"))
    if args.csv:
        result.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from repro.experiments.gap import DEFAULT_GAP_ALGORITHMS, run_gap_experiment

    algorithms = tuple(args.algorithms or DEFAULT_GAP_ALGORITHMS)
    reports = run_gap_experiment(
        num_items=args.items,
        num_channels=args.channels,
        instances=args.instances,
        algorithms=algorithms,
        workers=args.workers,
    )
    rows = [
        (
            report.algorithm,
            report.summary.mean * 100,
            report.worst * 100,
            f"{report.exact_hits}/{len(report.gaps)}",
        )
        for report in reports
    ]
    print(
        format_table(
            ["algorithm", "mean gap (%)", "worst gap (%)", "exact hits"],
            rows,
            title=(
                f"True optimality gaps over {args.instances} instances "
                f"(N={args.items}, K={args.channels}, brute-force optimum)"
            ),
            precision=3,
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(
        num_items=args.items,
        skewness=args.skewness,
        diversity=args.diversity,
        seed=args.seed,
    )
    database = generate_database(spec)
    allocator = make_allocator(args.algorithm)
    outcome = allocator.allocate(database, args.channels)
    report = run_broadcast_simulation(
        outcome.allocation,
        num_requests=args.requests,
        seed=args.seed,
        backend=args.backend,
    )
    print(f"algorithm: {args.algorithm}")
    print(f"requests simulated: {report.num_requests}")
    print(f"events processed:   {report.events_processed}")
    print(
        f"measured waiting time:   {format_float(report.measured.mean)} "
        f"± {format_float(report.measured.ci_halfwidth)} (95% CI)"
    )
    print(
        f"analytical waiting time: "
        f"{format_float(report.analytical_waiting_time)}"
    )
    print(f"relative error: {format_float(report.relative_error * 100, precision=2)}%")
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.core.scheduler import DRPCDSAllocator
    from repro.simulation.adaptive import RotatingDrift, run_adaptive_simulation

    database = generate_database(
        WorkloadSpec(num_items=args.items, skewness=1.2, seed=args.seed)
    )
    drift = RotatingDrift(
        [item.frequency for item in database.items],
        shift_per_epoch=args.shift,
    )
    common = dict(
        num_channels=args.channels,
        epochs=args.epochs,
        requests_per_epoch=args.requests,
        drift=drift,
        seed=args.seed,
    )
    warm = getattr(args, "warm_start", False)
    adaptive = run_adaptive_simulation(
        database, DRPCDSAllocator(), adapt=True, warm_start=warm, **common
    )
    static = run_adaptive_simulation(
        database, DRPCDSAllocator(), adapt=False, **common
    )
    rows = [
        (a.epoch, s.measured.mean, a.measured.mean, a.profile_error)
        for a, s in zip(adaptive, static)
    ]
    print(
        format_table(
            [
                "epoch",
                "static wait (s)",
                "adaptive wait (s)",
                "adaptive profile err",
            ],
            rows,
            title=(
                f"Drift: {args.shift} ranks/epoch over {args.items} items"
            ),
            precision=3,
        )
    )
    if warm:
        warm_epochs = sum(
            1 for r in adaptive if r.allocation_mode in ("warm", "fallback")
        )
        fallbacks = sum(
            1 for r in adaptive if r.allocation_mode == "fallback"
        )
        cache_hits = sum(1 for r in adaptive if r.cache_hit)
        moves = sum(r.warm_moves for r in adaptive)
        print(
            f"\nwarm start: {warm_epochs}/{len(adaptive)} epochs warm "
            f"({moves} CDS moves total), {cache_hits} cache hits, "
            f"{fallbacks} guard fallbacks"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.service import BroadcastService, drifting_stream, replay_source
    from repro.simulation.adaptive import RotatingDrift
    from repro.workloads.sketch import CountMinSketch
    from repro.workloads.trace import save_trace_jsonl

    database = generate_database(
        WorkloadSpec(num_items=args.items, skewness=1.2, seed=args.seed)
    )
    sizes = {item.item_id: item.size for item in database.items}
    half_life = (
        args.half_life
        if args.half_life is not None
        else 2.0 * args.epoch_seconds
    )
    sketch = CountMinSketch(
        args.sketch_width,
        args.sketch_depth,
        half_life=half_life,
        conservative=args.conservative,
        exact=args.exact,
    )
    service = BroadcastService(
        sizes,
        args.channels,
        epoch_seconds=args.epoch_seconds,
        sketch=sketch,
        smoothing=args.smoothing,
        initial_database=database,
        pace=args.pace,
    )
    if args.replay is not None:
        source = replay_source(args.replay)
        origin = f"replay of {args.replay}"
    else:
        epochs = args.max_epochs if args.max_epochs is not None else 20
        drift = RotatingDrift(
            [item.frequency for item in database.items],
            shift_per_epoch=args.shift,
        )
        source = drifting_stream(
            database,
            epochs=epochs,
            requests_per_epoch=args.requests_per_epoch,
            epoch_seconds=args.epoch_seconds,
            drift=drift,
            seed=args.seed,
        )
        origin = (
            f"generated drifting stream ({args.shift} ranks/epoch, "
            f"{args.requests_per_epoch} req/epoch)"
        )
    if args.record is not None:
        from repro.workloads.trace import RequestTrace

        recorded = RequestTrace()

        def _tee(records):
            for record in records:
                recorded.append(record)
                yield record

        source = _tee(source)
    reports = service.run(source, max_epochs=args.max_epochs)
    if args.record is not None:
        save_trace_jsonl(recorded, args.record)
    if args.json:
        print(
            json_module.dumps(
                {
                    "source": origin,
                    "epochs": [report.to_dict() for report in reports],
                    "handovers": len(service.live.handovers),
                    "total_requests": service.total_requests,
                    "sketch": {
                        "width": sketch.width,
                        "depth": sketch.depth,
                        "half_life": sketch.half_life,
                        "exact": sketch.exact,
                        "state_size": sketch.state_size,
                        "epsilon": sketch.epsilon,
                        "rescales": sketch.rescales,
                    },
                },
                indent=2,
            )
        )
        return 0
    rows = [
        (
            report.epoch,
            report.requests,
            report.measured.mean,
            report.allocation_cost,
            report.allocation_mode,
            report.warm_moves,
            report.generation,
        )
        for report in reports
    ]
    print(
        format_table(
            [
                "epoch",
                "requests",
                "wait mean (s)",
                "alloc cost",
                "mode",
                "warm moves",
                "gen",
            ],
            rows,
            title=f"repro serve: {origin}",
            precision=3,
        )
    )
    estimator = "exact oracle counters" if args.exact else (
        f"count-min {sketch.width}x{sketch.depth} "
        f"(eps={sketch.epsilon:.2%} of mass)"
    )
    print(
        f"\n{service.total_requests} requests, {len(reports)} epochs, "
        f"{len(service.live.handovers)} handovers; estimator: {estimator}, "
        f"state {sketch.state_size} counters, half-life {half_life:g}s"
    )
    if args.record is not None:
        print(f"stream recorded to {args.record}")
    return 0


def _cmd_hetero(args: argparse.Namespace) -> int:
    from repro.core.hetero import (
        HeteroDRPCDSAllocator,
        hetero_waiting_time,
    )
    from repro.core.scheduler import DRPCDSAllocator

    database = generate_database(
        WorkloadSpec(num_items=args.items, seed=args.seed)
    )
    num_channels = len(args.bandwidths)
    naive = DRPCDSAllocator().allocate(database, num_channels).allocation
    aware = (
        HeteroDRPCDSAllocator(args.bandwidths)
        .allocate(database, num_channels)
        .allocation
    )
    rows = [
        (
            "paper pipeline (bandwidth-oblivious)",
            hetero_waiting_time(naive, args.bandwidths),
        ),
        (
            "bandwidth-aware pipeline",
            hetero_waiting_time(aware, args.bandwidths),
        ),
    ]
    print(
        format_table(
            ["configuration", "W_b (s)"],
            rows,
            title=f"bandwidths = {args.bandwidths}",
        )
    )
    saved = (rows[0][1] - rows[1][1]) / rows[0][1] * 100
    print(f"\nbandwidth-aware allocation saves {saved:.1f}%")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.core.scheduler import DRPCDSAllocator
    from repro.simulation.indexing import (
        IndexedChannel,
        optimal_index_replication,
    )

    database = generate_database(
        WorkloadSpec(num_items=args.items, seed=args.seed)
    )
    allocation = DRPCDSAllocator().allocate(
        database, args.channels
    ).allocation
    hot = max(
        range(allocation.num_channels),
        key=lambda i: allocation.channel_stats[i].frequency,
    )
    items = allocation.channel_items(hot)
    stats = allocation.channel_stats[hot]
    rule = optimal_index_replication(
        stats.size, len(items) * args.entry_size
    )
    rows = []
    weight = sum(item.frequency for item in items)
    for m in sorted({1, 2, rule, min(8, len(items)), len(items)}):
        if not 1 <= m <= len(items):
            continue
        channel = IndexedChannel(
            hot, items, DEFAULT_BANDWIDTH,
            replication=m, index_entry_size=args.entry_size,
        )
        wait = sum(
            item.frequency
            * channel.expected_timing(item.item_id).waiting_time
            for item in items
        ) / weight
        tune = sum(
            item.frequency
            * channel.expected_timing(item.item_id).tuning_time
            for item in items
        ) / weight
        rows.append((m, wait, tune, (1 - tune / wait) * 100))
    print(
        format_table(
            ["m", "E[wait] (s)", "E[tuning] (s)", "dozing (%)"],
            rows,
            title=(
                f"(1, m) indexing on the hottest channel "
                f"({stats.count} items); sqrt rule: m* = {rule}"
            ),
            precision=2,
        )
    )
    return 0


def _cmd_trace_convert(args: argparse.Namespace) -> int:
    output = args.output
    if output is None:
        base, _ = os.path.splitext(args.input)
        output = base + ".json"
    count = obs.jsonl_to_chrome(args.input, output)
    print(f"wrote {output} ({count} spans)")
    return 0


def _env_str(name: str) -> Optional[str]:
    value = os.environ.get(name, "").strip()
    return value or None


def _configure_observability(
    args: argparse.Namespace,
) -> Tuple[Optional[str], Optional[str], Optional[str]]:
    """Install tracer/registry and live facilities per CLI flags/env.

    Returns ``(trace_path, metrics_path, profile_path)``.  A live
    endpoint (``--metrics-port`` / ``--metrics-stream``) implies metric
    recording even without ``--metrics``; ``--metrics`` with no PATH
    records in-process only (``metrics_path`` comes back ``None``, so
    nothing is exported at exit).
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and metrics_path is None:
        trace_path = _env_str(obs.TRACE_ENV_VAR)
        metrics_path = _env_str(obs.METRICS_ENV_VAR)
    metrics_port = getattr(args, "metrics_port", None)
    if metrics_port is None:
        env_port = _env_str(obs.METRICS_PORT_ENV_VAR)
        if env_port is not None:
            try:
                metrics_port = int(env_port)
            except ValueError:
                raise SystemExit(
                    f"{obs.METRICS_PORT_ENV_VAR} must be an integer, "
                    f"got {env_port!r}"
                )
    stream_path = getattr(args, "metrics_stream", None) or _env_str(
        obs.METRICS_STREAM_ENV_VAR
    )
    profile_path = getattr(args, "profile", None) or _env_str(
        obs.PROFILE_ENV_VAR
    )
    live_requested = metrics_port is not None or stream_path is not None
    enable_metrics = metrics_path is not None or live_requested
    enable_trace = bool(trace_path)
    if enable_trace or enable_metrics:
        obs.configure(
            trace=enable_trace,
            metrics=enable_metrics,
            track_memory=getattr(args, "trace_memory", False),
        )
    if metrics_port is not None:
        server = obs.start_metrics_server(metrics_port)
        obs.log.progress(
            f"serving live metrics on "
            f"http://{server.host}:{server.port}/metrics"
        )
    if stream_path is not None:
        obs.start_metrics_stream(
            stream_path, interval=getattr(args, "metrics_interval", 1.0)
        )
    if profile_path is not None:
        obs.start_profiler()
    return trace_path or None, metrics_path or None, profile_path


def _export_observability(
    args: argparse.Namespace,
    trace_path: Optional[str],
    metrics_path: Optional[str],
    profile_path: Optional[str] = None,
) -> None:
    """Write trace/metrics/profile files plus the run manifest."""
    stopped = obs.stop_live()
    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    outputs = {}
    if trace_path and tracer.enabled:
        if trace_path.endswith(".jsonl"):
            tracer.export_jsonl(trace_path)
        else:
            tracer.export_chrome(trace_path)
        outputs["trace"] = trace_path
    if metrics_path and registry.enabled:
        registry.export_json(metrics_path)
        outputs["metrics"] = metrics_path
    profiler = stopped.get("profiler")
    if profile_path and profiler is not None:
        samples = profiler.export_folded(profile_path)
        obs.log.progress(
            f"profile: {samples} sample(s) over "
            f"{profiler.duration:.2f}s"
        )
        outputs["profile"] = profile_path
    if not outputs:
        return
    anchor = (
        outputs.get("trace")
        or outputs.get("metrics")
        or outputs["profile"]
    )
    base, _ = os.path.splitext(anchor)
    manifest_path = base + ".manifest.json"
    options = {
        key: value
        for key, value in sorted(vars(args).items())
        if key
        not in (
            "command",
            "trace",
            "metrics",
            "trace_memory",
            "metrics_port",
            "metrics_stream",
            "metrics_interval",
            "profile",
        )
    }
    manifest = obs.build_manifest(
        command=args.command,
        config=options,
        seed=getattr(args, "seed", None),
        outputs=outputs,
        extra={"spans_recorded": len(tracer.records) if tracer.enabled else 0},
    )
    obs.write_manifest(manifest_path, manifest)
    for path in (*outputs.values(), manifest_path):
        obs.log.progress(f"wrote {path}")


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import fuzz as verify_fuzz

    if args.list_checks:
        print("Registered checks:")
        for spec in verify_fuzz.available_checks():
            gate = (
                "all sizes"
                if spec.max_items is None
                else f"N <= {spec.max_items}"
            )
            if spec.once:
                gate += ", once per run"
            print(f"  {spec.name:40s} {gate}")
        print("Injectable bugs:", ", ".join(sorted(verify_fuzz.INJECTABLE_BUGS)))
        return 0

    if args.replay:
        exit_code = 0
        for path in args.replay:
            violations = verify_fuzz.replay_failure(path)
            if violations:
                exit_code = 1
                print(f"{path}: {len(violations)} violation(s)")
                for violation in violations:
                    print(f"  [{violation.check}] {violation.message}")
            else:
                print(f"{path}: clean")
        return exit_code

    if not args.fuzz:
        print(
            "nothing to do: pass --fuzz, --replay FILE... or --list-checks",
            file=sys.stderr,
        )
        return 2

    report = verify_fuzz.run_fuzz(
        seed=args.seed,
        budget=args.budget,
        failures_dir=args.failures_dir or verify_fuzz.DEFAULT_FAILURES_DIR,
        checks=args.checks,
        inject=args.inject_bug,
        progress=None if args.quiet else obs.log.progress,
    )
    print(
        f"verify: {report.cases} case(s) fuzzed with seed {report.seed} "
        f"in {report.elapsed_seconds:.1f}s"
        + (f" [injected bug: {report.injected}]" if report.injected else "")
    )
    if not args.quiet:
        for name, count in sorted(report.checks_run.items()):
            print(f"  {name:40s} {count:4d} run(s)")
    if report.failures:
        print(f"{len(report.failures)} check(s) FAILED:")
        for failure in report.failures:
            print(
                f"  {failure.check}: shrunk to {failure.num_items} item(s) / "
                f"{failure.num_channels} channel(s), "
                f"{len(failure.violations)} violation(s) -> {failure.path}"
            )
        print("replay with: repro verify --replay <file>")
        return 1
    print("all checks passed")
    return 0


def _rows_without_elapsed(result) -> list:
    """Row tuples minus the wall-clock aggregates (machine-dependent)."""
    return [
        (
            row.sweep_value,
            row.algorithm,
            row.mean_cost,
            row.std_cost,
            row.mean_waiting_time,
            row.std_waiting_time,
            row.replications,
        )
        for row in result.rows
    ]


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.experiments import shards as shard_fabric
    from repro.experiments.runner import run_experiment

    if args.shard_command == "compile":
        config = figure_config(args.figure_id)
        if args.replications is not None:
            config = config.scaled_down(replications=args.replications)
        manifest = shard_fabric.compile_manifest(
            config, num_shards=args.shards, warm_start=args.warm_start
        )
        shard_fabric.save_manifest(manifest, args.output)
        print(
            f"wrote {args.output}: {manifest.num_cells} cell(s) of "
            f"{config.name} in {manifest.num_shards} shard(s)"
            + (
                f", {len(manifest.seed_edges)} seed edge(s)"
                if manifest.warm_start
                else ""
            )
        )
        return 0

    manifest = shard_fabric.load_manifest(args.manifest)

    if args.shard_command == "run":
        report = shard_fabric.run_shard(
            manifest,
            args.shard,
            results_dir=args.results_dir,
            workers=args.workers,
            cell_timeout=args.cell_timeout,
            max_cells=args.max_cells,
            progress=None if args.quiet else obs.log.progress,
        )
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0

    if args.shard_command == "status":
        complete = True
        for entry in shard_fabric.shard_status(
            manifest, results_dir=args.results_dir
        ):
            complete = complete and entry["missing"] == 0
            flags = []
            if entry["errors"]:
                flags.append(f"{entry['errors']} error cell(s)")
            if entry["torn_trailing_record"]:
                flags.append("torn trailing record")
            print(
                f"shard {entry['shard']}: {entry['done']}/{entry['cells']} "
                f"cell(s), {entry['seeds']} seed(s)"
                + (f"  [{', '.join(flags)}]" if flags else "")
            )
        print("sweep complete" if complete else "sweep incomplete")
        return 0 if complete else 1

    # merge
    progress = None if args.quiet else obs.log.progress
    result = shard_fabric.merge_shards(
        manifest, results_dir=args.results_dir, progress=progress
    )
    print()
    print(result.to_text("mean_waiting_time"))
    if args.csv:
        result.to_csv(args.csv)
        print(f"\nwrote {args.csv}")
    if args.json:
        result.to_json(args.json)
        print(f"wrote {args.json}")
    if args.diff_serial:
        serial = run_experiment(
            manifest.config, warm_start=manifest.warm_start
        )
        if _rows_without_elapsed(result) == _rows_without_elapsed(serial):
            print(
                "diff-serial: merged rows identical to the serial run "
                "(elapsed aggregates excepted)"
            )
        else:
            print(
                "diff-serial: MISMATCH — merged rows differ from the "
                "serial run",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import glob

    from repro.obs import bench as bench_history
    from repro.obs.manifest import config_digest

    paths = list(args.bench) if args.bench else sorted(
        glob.glob("BENCH_*.json")
    )
    if not paths:
        print("bench-check: no BENCH_*.json files found", file=sys.stderr)
        return 2
    history_path = args.history or bench_history.DEFAULT_HISTORY_PATH
    history = bench_history.load_history(history_path)
    regressions = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        name = os.path.splitext(os.path.basename(path))[0]
        metrics = bench_history.extract_metrics(payload)
        digest = config_digest(payload.get("config", {}))
        found, summary = bench_history.check_regressions(
            name,
            metrics,
            history,
            config_sha256=digest,
            threshold=args.threshold,
            window=args.window,
        )
        print(
            f"{name}: {summary['metrics_gated']}/"
            f"{summary['metrics_compared']} metric(s) gated against "
            f"{summary['history_records']} history record(s), "
            f"threshold {summary['threshold_percent']:.1f}%"
        )
        for regression in found:
            print(f"  REGRESSION {regression.describe()}")
        regressions.extend(found)
        if not args.no_append:
            bench_history.append_history(path, history_path)
    if not args.no_append:
        print(f"recorded {len(paths)} run(s) into {history_path}")
    if regressions:
        print(
            f"bench-check: {len(regressions)} regression(s) past "
            f"{args.threshold:.0%} threshold",
            file=sys.stderr,
        )
        return 1
    print("bench-check: no regressions")
    return 0


_DISPATCH = {
    "allocate": _cmd_allocate,
    "figure": _cmd_figure,
    "sweep": _cmd_figure,
    "gap": _cmd_gap,
    "simulate": _cmd_simulate,
    "adaptive": _cmd_adaptive,
    "serve": _cmd_serve,
    "hetero": _cmd_hetero,
    "index": _cmd_index,
    "trace-convert": _cmd_trace_convert,
    "verify": _cmd_verify,
    "shard": _cmd_shard,
    "bench-check": _cmd_bench_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "trace-convert":
        return _cmd_trace_convert(args)
    if args.command == "bench-check":
        return _cmd_bench_check(args)
    trace_path, metrics_path, profile_path = _configure_observability(args)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "example":
            return _cmd_example()
        if args.command == "report":
            from repro.experiments.report import generate_report

            text = generate_report(
                replications=args.replications,
                workers=args.workers,
                output=args.output,
                progress=None if args.quiet else obs.log.progress,
            )
            if args.output:
                print(f"wrote {args.output}")
            else:
                print(text)
            return 0
        handler = _DISPATCH.get(args.command)
        if handler is None:  # pragma: no cover - argparse rejects earlier
            parser.error(f"unknown command {args.command!r}")
            return 2
        return handler(args)
    finally:
        _export_observability(args, trace_path, metrics_path, profile_path)
        obs.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
