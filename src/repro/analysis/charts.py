"""ASCII charts — terminal-friendly rendering of experiment series.

The paper presents its evaluation as bar charts; the CLI can sketch the
same shapes directly in the terminal.  Pure string manipulation, no
plotting dependency; precise numbers live in the companion tables
(:mod:`repro.analysis.tables`), the charts are for shape at a glance.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

__all__ = ["bar_chart", "grouped_bar_chart", "series_chart"]

_BLOCK = "█"
_HALF = "▌"


def _scaled_width(value: float, maximum: float, width: int) -> int:
    if maximum <= 0:
        return 0
    return max(0, round(value / maximum * width))


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one bar per (label, value).

    Example::

        vfk      ████████████████████████████████████████ 9.29
        drp-cds  ██████████████████████████████▌ 7.05
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        raise ValueError("cannot chart an empty series")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if any(v < 0 or not math.isfinite(v) for v in values):
        raise ValueError("values must be finite and non-negative")
    maximum = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        cells = _scaled_width(value, maximum, 2 * width)
        bar = _BLOCK * (cells // 2) + (_HALF if cells % 2 else "")
        lines.append(
            f"{str(label):<{label_width}}  {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    group_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 40,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Grouped horizontal bars — the shape of the paper's figures.

    ``series`` maps a series name (algorithm) to one value per group
    (sweep point).  All series share a common scale.
    """
    if not group_labels:
        raise ValueError("cannot chart an empty sweep")
    if not series:
        raise ValueError("need at least one series")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(group_labels)} groups"
            )
    maximum = max(max(values) for values in series.values())
    name_width = max(len(name) for name in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, group in enumerate(group_labels):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            cells = _scaled_width(value, maximum, 2 * width)
            bar = _BLOCK * (cells // 2) + (_HALF if cells % 2 else "")
            lines.append(
                f"  {name:<{name_width}}  {bar} {value:g}{unit}"
            )
    return "\n".join(lines)


def series_chart(
    points: Sequence[Tuple[float, float]],
    *,
    width: int = 60,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Scatter/line sketch of an (x, y) series on a character grid.

    Nearest-cell plotting with ``*`` markers, y-axis labels on the
    left.  Good enough to eyeball monotonicity and curvature.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if any(not math.isfinite(v) for v in xs + ys):
        raise ValueError("points must be finite")
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = round((x - x_low) / x_span * (width - 1))
        row = round((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"
    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    label_width = max(len(top_label), len(bottom_label))
    for index, row_cells in enumerate(grid):
        if index == 0:
            label = top_label
        elif index == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row_cells)}")
    lines.append(
        f"{'':>{label_width}} +{'-' * width}"
    )
    lines.append(
        f"{'':>{label_width}}  {x_low:<g}{'':^{max(0, width - 12)}}{x_high:>g}"
    )
    return "\n".join(lines)
