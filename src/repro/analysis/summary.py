"""Experiment summarisation: gaps, winners and trend checks.

Turns a raw :class:`~repro.experiments.records.ExperimentResult` into
the judgments the paper's prose makes ("VF^K's discrepancy increases
with K", "DRP-CDS is within 3% of the optimum") so that reports, the
CLI and the benchmark assertions all derive them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import relative_gap

if TYPE_CHECKING:  # import only for annotations — avoids a cycle with
    # repro.experiments (whose report module uses this one).
    from repro.experiments.records import ExperimentResult

__all__ = ["AlgorithmSummary", "summarize_experiment", "trend_direction"]


@dataclass(frozen=True)
class AlgorithmSummary:
    """One algorithm's standing within an experiment.

    Gaps are relative to the reference algorithm at the same sweep
    point (positive = worse than the reference).
    """

    algorithm: str
    mean_gap: float
    max_gap: float
    min_gap: float
    wins: int  # sweep points where this algorithm was the best overall

    @property
    def mean_gap_percent(self) -> float:
        return self.mean_gap * 100.0


def summarize_experiment(
    result: "ExperimentResult",
    *,
    reference: str = "gopt",
    metric: str = "mean_waiting_time",
) -> List[AlgorithmSummary]:
    """Per-algorithm gap summary against a reference algorithm.

    Raises
    ------
    KeyError
        If the reference algorithm is not part of the experiment.
    """
    if reference not in result.algorithms:
        raise KeyError(
            f"reference {reference!r} not among {result.algorithms}"
        )
    values = result.sweep_values()
    per_algorithm: Dict[str, List[float]] = {
        algorithm: [] for algorithm in result.algorithms
    }
    best_at: Dict[float, str] = {}
    for value in values:
        readings = {
            algorithm: getattr(result.cell(value, algorithm), metric)
            for algorithm in result.algorithms
        }
        baseline = readings[reference]
        best_at[value] = min(readings, key=readings.get)
        for algorithm, reading in readings.items():
            per_algorithm[algorithm].append(
                relative_gap(reading, baseline)
            )
    summaries = []
    for algorithm in result.algorithms:
        gaps = per_algorithm[algorithm]
        summaries.append(
            AlgorithmSummary(
                algorithm=algorithm,
                mean_gap=sum(gaps) / len(gaps),
                max_gap=max(gaps),
                min_gap=min(gaps),
                wins=sum(
                    1 for value in values if best_at[value] == algorithm
                ),
            )
        )
    return summaries


def trend_direction(
    series: Sequence[Tuple[float, float]],
    *,
    tolerance: float = 0.0,
) -> Optional[str]:
    """Classify a sweep series: 'decreasing', 'increasing', or None.

    A series is monotone under the given absolute ``tolerance`` (adjacent
    wobbles within the tolerance do not break the trend).  Mixed series
    return ``None``.  Used to assert the paper's qualitative claims
    ("waiting time decreases as K increases") mechanically.
    """
    if len(series) < 2:
        raise ValueError("need at least two points to define a trend")
    ys = [y for _, y in series]
    non_increasing = all(
        b <= a + tolerance for a, b in zip(ys, ys[1:])
    )
    non_decreasing = all(
        b >= a - tolerance for a, b in zip(ys, ys[1:])
    )
    strictly_down = ys[-1] < ys[0]
    strictly_up = ys[-1] > ys[0]
    if non_increasing and strictly_down:
        return "decreasing"
    if non_decreasing and strictly_up:
        return "increasing"
    return None
