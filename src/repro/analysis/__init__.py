"""Statistics, table rendering and analytical bounds."""

from repro.analysis.charts import bar_chart, grouped_bar_chart, series_chart
from repro.analysis.stats import Aggregate, aggregate, geometric_mean, relative_gap
from repro.analysis.summary import (
    AlgorithmSummary,
    summarize_experiment,
    trend_direction,
)
from repro.analysis.tables import format_float, format_table
from repro.analysis.theory import (
    conventional_waiting_time,
    cost_lower_bound,
    single_channel_cost,
    waiting_time_lower_bound,
)

__all__ = [
    "Aggregate",
    "aggregate",
    "relative_gap",
    "geometric_mean",
    "format_table",
    "format_float",
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "AlgorithmSummary",
    "summarize_experiment",
    "trend_direction",
    "cost_lower_bound",
    "waiting_time_lower_bound",
    "single_channel_cost",
    "conventional_waiting_time",
]
