"""Analytical bounds and closed forms around the cost model.

Besides the formulas the paper states, this module derives a
partition-independent **lower bound** on the achievable cost, which the
test suite uses to sanity-check every algorithm and which quantifies how
much headroom remains below any heuristic's result:

For any partition of D into K groups,

.. math::

    \\sum_g F_g Z_g
    \\;\\ge\\; \\frac{\\big(\\sum_g \\sqrt{F_g Z_g}\\big)^2}{K}
    \\;\\ge\\; \\frac{\\big(\\sum_{x \\in D} \\sqrt{f_x z_x}\\big)^2}{K},

where the first step is Cauchy–Schwarz over groups and the second uses
:math:`\\sqrt{F_g Z_g} \\ge \\sum_{x \\in g} \\sqrt{f_x z_x}` (again
Cauchy–Schwarz, within each group).  Independently,
:math:`F_g Z_g \\ge \\sum_{x \\in g} f_x z_x` (the cross terms are
non-negative), so the allocation-independent download sum is a second
lower bound.  :func:`cost_lower_bound` returns the larger of the two.
"""

from __future__ import annotations

import math

from repro.core.cost import DEFAULT_BANDWIDTH, waiting_time_from_cost
from repro.core.database import BroadcastDatabase
from repro.exceptions import InfeasibleProblemError

__all__ = [
    "cost_lower_bound",
    "waiting_time_lower_bound",
    "single_channel_cost",
    "conventional_waiting_time",
]


def cost_lower_bound(database: BroadcastDatabase, num_channels: int) -> float:
    """Partition-independent lower bound on :math:`\\sum_g F_g Z_g`.

    See the module docstring for the derivation.  Tight in degenerate
    cases (e.g. all items identical and ``K | N``), loose but useful in
    general.
    """
    if num_channels < 1:
        raise InfeasibleProblemError(
            f"num_channels must be >= 1, got {num_channels}"
        )
    sqrt_sum = math.fsum(
        math.sqrt(item.frequency * item.size) for item in database
    )
    cauchy_bound = sqrt_sum * sqrt_sum / num_channels
    product_bound = database.fixed_download_cost
    return max(cauchy_bound, product_bound)


def waiting_time_lower_bound(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """Lower bound on the achievable :math:`W_b` for this instance."""
    return waiting_time_from_cost(
        cost_lower_bound(database, num_channels),
        database.fixed_download_cost,
        bandwidth=bandwidth,
    )


def single_channel_cost(database: BroadcastDatabase) -> float:
    """Cost of the trivial K=1 allocation: ``(Σf)(Σz)``.

    The worst end of the spectrum; equals ``total_size`` for a
    normalised database.  The paper's Table 3(a) value (135.60) is this
    quantity for the example profile.
    """
    return database.total_frequency * database.total_size


def conventional_waiting_time(
    num_items: int,
    item_size: float,
    *,
    bandwidth: float = DEFAULT_BANDWIDTH,
) -> float:
    """The introduction's single-channel, equal-size formula.

    ``W = N·z / (2b) + z / b`` — probe half-cycle plus download, for N
    equal-size items on one channel.  Used by tests as the degenerate
    cross-check of the general model.
    """
    if num_items < 1:
        raise InfeasibleProblemError(f"num_items must be >= 1, got {num_items}")
    if item_size <= 0 or bandwidth <= 0:
        raise InfeasibleProblemError(
            "item_size and bandwidth must be positive"
        )
    return num_items * item_size / (2.0 * bandwidth) + item_size / bandwidth
