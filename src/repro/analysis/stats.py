"""Statistics helpers for aggregating experiment replications."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Aggregate", "aggregate", "relative_gap", "geometric_mean"]


@dataclass(frozen=True)
class Aggregate:
    """Mean / std / standard-error of a replication sample."""

    count: int
    mean: float
    std: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return 0.0
        return self.std / math.sqrt(self.count)


def aggregate(values: Sequence[float]) -> Aggregate:
    """Aggregate replication values (sample standard deviation)."""
    if not values:
        raise ValueError("cannot aggregate an empty sequence")
    count = len(values)
    mean = math.fsum(values) / count
    if count > 1:
        variance = math.fsum((v - mean) ** 2 for v in values) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return Aggregate(count=count, mean=mean, std=std)


def relative_gap(value: float, reference: float) -> float:
    """``(value − reference) / reference`` — the optimality-gap metric.

    Positive when ``value`` is worse (larger) than the reference; the
    paper reports DRP-CDS "error compared to the optimal waiting time is
    about 3%" in exactly this sense.
    """
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return (value - reference) / reference


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be positive).

    The right average for ratios such as per-instance speedups or
    optimality gaps expressed multiplicatively.
    """
    if not values:
        raise ValueError("cannot average an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(math.fsum(math.log(v) for v in values) / len(values))
