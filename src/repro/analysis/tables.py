"""Plain-text table rendering for experiment reports.

The benchmark harness prints the paper's figures as rows/series tables
(we regenerate the *data* of each figure, not its bitmap).  This module
owns the formatting so every experiment and example prints consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_float"]

Cell = Union[str, float, int, None]


def format_float(value: float, *, precision: int = 4) -> str:
    """Compact float formatting: fixed precision, no trailing noise."""
    formatted = f"{value:.{precision}f}"
    if "." in formatted:
        formatted = formatted.rstrip("0").rstrip(".")
    return formatted if formatted else "0"


def _render_cell(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):  # bool is an int subclass; keep it textual
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        return format_float(cell, precision=precision)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned; ``None``
    renders as ``-``.  Example::

        K    vfk     drp     drp-cds  gopt
        ---  ------  ------  -------  ------
        4    9.1203  8.8901  8.7624   8.7105
    """
    materialised: List[List[str]] = []
    numeric: List[List[bool]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        materialised.append([_render_cell(cell, precision) for cell in row])
        numeric.append(
            [isinstance(cell, (int, float)) and not isinstance(cell, bool)
             for cell in row]
        )
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def pad(text: str, index: int, right: bool) -> str:
        return text.rjust(widths[index]) if right else text.ljust(widths[index])

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(pad(h, i, right=False) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row, flags in zip(materialised, numeric):
        lines.append(
            "  ".join(
                pad(cell, index, right=flags[index])
                for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)
