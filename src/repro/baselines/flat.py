"""Simple allocation baselines: round-robin, random, greedy.

None of these appear in the paper's evaluation — the paper compares
against VF^K and GOPT — but a credible harness needs naive floors:

* :class:`RoundRobinAllocator` — deal items over channels in catalogue
  order (the "flat broadcast program" of the paper's introduction,
  adapted to multiple channels);
* :class:`RandomAllocator` — a uniformly random feasible allocation
  (the expected-cost floor any heuristic must beat);
* :class:`GreedyCostAllocator` — insert items in descending ``f·z``
  weight, each into the channel where the marginal cost increase
  ``F_g·z_x + Z_g·f_x + f_x·z_x`` is smallest (an LPT-style greedy).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError

__all__ = ["RoundRobinAllocator", "RandomAllocator", "GreedyCostAllocator"]


def _check_feasible(database: BroadcastDatabase, num_channels: int) -> None:
    if not 1 <= num_channels <= len(database):
        raise InfeasibleProblemError(
            f"cannot allocate {len(database)} item(s) to {num_channels} "
            "non-empty channels"
        )


class RoundRobinAllocator(Allocator):
    """Deal items over the K channels in catalogue order.

    Item ``i`` goes to channel ``i mod K``.  With a Zipf catalogue this
    spreads popular items across channels, which is exactly what makes
    flat programs ineffective — a useful floor.
    """

    name = "round-robin"

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        _check_feasible(database, num_channels)
        groups: List[List[DataItem]] = [[] for _ in range(num_channels)]
        for index, item in enumerate(database.items):
            groups[index % num_channels].append(item)
        return ChannelAllocation(database, groups)


class RandomAllocator(Allocator):
    """A uniformly random feasible allocation.

    Feasibility (every channel non-empty) is guaranteed by first dealing
    one random item per channel, then assigning the rest uniformly.
    """

    name = "random"

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = seed

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        _check_feasible(database, num_channels)
        rng = np.random.default_rng(self._seed)
        n = len(database)
        order = rng.permutation(n)
        assignment = rng.integers(0, num_channels, size=n)
        # The first K items of the shuffle pin one item per channel.
        for channel, index in enumerate(order[:num_channels]):
            assignment[index] = channel
        self._note(seed=self._seed)
        return ChannelAllocation.from_assignment_vector(
            database, assignment.tolist(), num_channels
        )


class GreedyCostAllocator(Allocator):
    """Greedy marginal-cost insertion in descending weight order.

    Items are considered in descending ``f·z`` (the heaviest contributors
    first, LPT style).  Adding item ``x`` to a channel with aggregates
    ``(F, Z)`` raises the cost by ``F·z_x + Z·f_x + f_x·z_x``; the item
    goes wherever that increase is smallest.  The first K items seed the
    K channels so none stays empty.
    """

    name = "greedy"

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        _check_feasible(database, num_channels)
        ordered = sorted(
            database.items, key=lambda item: (-item.weight, item.item_id)
        )
        groups: List[List[DataItem]] = [[] for _ in range(num_channels)]
        agg_f = [0.0] * num_channels
        agg_z = [0.0] * num_channels
        for index, item in enumerate(ordered):
            if index < num_channels:
                target = index
            else:
                target = min(
                    range(num_channels),
                    key=lambda g: agg_f[g] * item.size
                    + agg_z[g] * item.frequency
                    + item.weight,
                )
            groups[target].append(item)
            agg_f[target] += item.frequency
            agg_z[target] += item.size
        return ChannelAllocation(database, groups)
