"""Exact solvers — true global optima at small scale.

The paper's "global optimum" (GOPT) is a genetic algorithm and therefore
only a proxy.  These solvers provide ground truth where it is feasible:

* :func:`brute_force_optimal` / :class:`BruteForceAllocator` — enumerate
  every partition of the N items into exactly K non-empty groups
  (restricted-growth-string enumeration).  The count is the Stirling
  number of the second kind ``S(N, K)``; the solver refuses instances
  whose count exceeds a budget instead of hanging.
* :class:`ContiguousDPAllocator` — the optimal *contiguous* partition in
  benefit-ratio order (delegates to
  :func:`repro.core.partition.contiguous_optimal`).  Contiguity is a
  restriction, so its cost upper-bounds the global optimum but
  lower-bounds anything DRP's bisection can reach.

The test suite uses these to measure DRP-CDS's true optimality gap on
small instances — the paper's "local optimum is very close to the global
optimum" claim, checked exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.partition import contiguous_optimal
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError, SolverLimitError

__all__ = [
    "stirling2",
    "partitions_into_k",
    "brute_force_optimal",
    "BruteForceAllocator",
    "ContiguousDPAllocator",
]

#: Refuse brute-force enumeration beyond this many partitions.
DEFAULT_PARTITION_BUDGET = 5_000_000


def stirling2(n: int, k: int) -> int:
    """Stirling number of the second kind ``S(n, k)``.

    The number of ways to partition ``n`` labelled items into ``k``
    non-empty unlabelled groups — the exact search-space size of the
    channel-allocation problem (channel labels are interchangeable).
    """
    if n < 0 or k < 0:
        raise InfeasibleProblemError("n and k must be non-negative")
    if k > n:
        return 0
    if n == 0:
        return 1 if k == 0 else 0
    if k == 0:
        return 0
    # dp[j] = S(i, j) rolled over i.
    previous = [0] * (k + 1)
    previous[0] = 1
    for i in range(1, n + 1):
        current = [0] * (k + 1)
        for j in range(1, min(i, k) + 1):
            current[j] = j * previous[j] + previous[j - 1]
        previous = current
        previous[0] = 1 if i == 0 else 0
    return previous[k]


def partitions_into_k(n: int, k: int) -> Iterator[List[int]]:
    """Yield every partition of ``range(n)`` into exactly ``k`` blocks.

    Partitions are emitted as restricted growth strings: a list ``a``
    with ``a[0] = 0`` and ``a[i] <= max(a[:i]) + 1``, using exactly the
    labels ``0..k-1``.  Each set partition appears exactly once (block
    labels are canonical, not permuted).
    """
    if not 1 <= k <= n:
        raise InfeasibleProblemError(
            f"cannot partition {n} item(s) into {k} non-empty blocks"
        )
    assignment = [0] * n

    def extend(position: int, used: int) -> Iterator[List[int]]:
        remaining = n - position
        if position == n:
            if used == k:
                yield assignment.copy()
            return
        # Prune: even giving every remaining item a fresh label cannot
        # reach k blocks.
        if used + remaining < k:
            return
        limit = min(used + 1, k)
        for label in range(limit):
            assignment[position] = label
            yield from extend(position + 1, used + (1 if label == used else 0))

    yield from extend(1, 1)


def brute_force_optimal(
    database: BroadcastDatabase,
    num_channels: int,
    *,
    partition_budget: int = DEFAULT_PARTITION_BUDGET,
) -> Tuple[ChannelAllocation, float]:
    """The true global optimum by exhaustive enumeration.

    Returns ``(allocation, cost)``.  Cost is computed incrementally from
    per-block aggregates, so each partition is scored in O(K).

    Raises
    ------
    SolverLimitError
        If ``S(N, K)`` exceeds ``partition_budget``.
    """
    n = len(database)
    if not 1 <= num_channels <= n:
        raise InfeasibleProblemError(
            f"cannot allocate {n} item(s) to {num_channels} non-empty channels"
        )
    count = stirling2(n, num_channels)
    if count > partition_budget:
        raise SolverLimitError(
            f"S({n}, {num_channels}) = {count} partitions exceeds the "
            f"budget of {partition_budget}; brute force is infeasible"
        )
    items: Tuple[DataItem, ...] = database.items
    frequencies = [item.frequency for item in items]
    sizes = [item.size for item in items]
    best_cost = float("inf")
    best_assignment: List[int] = []
    agg_f = [0.0] * num_channels
    agg_z = [0.0] * num_channels
    for assignment in partitions_into_k(n, num_channels):
        for g in range(num_channels):
            agg_f[g] = 0.0
            agg_z[g] = 0.0
        for index, group in enumerate(assignment):
            agg_f[group] += frequencies[index]
            agg_z[group] += sizes[index]
        cost = 0.0
        for g in range(num_channels):
            cost += agg_f[g] * agg_z[g]
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignment
    allocation = ChannelAllocation.from_assignment_vector(
        database, best_assignment, num_channels
    )
    return allocation, best_cost


class BruteForceAllocator(Allocator):
    """Exhaustive global optimum (small instances only)."""

    name = "brute-force"

    def __init__(self, *, partition_budget: int = DEFAULT_PARTITION_BUDGET) -> None:
        self._partition_budget = partition_budget

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        allocation, cost = brute_force_optimal(
            database, num_channels, partition_budget=self._partition_budget
        )
        self._note(searched_partitions=stirling2(len(database), num_channels))
        del cost
        return allocation


class ContiguousDPAllocator(Allocator):
    """Optimal contiguous partition in benefit-ratio order.

    The strongest polynomial-time member of DRP's search family: it
    dominates any bisection order DRP could choose while staying within
    contiguous partitions of the ``br``-sorted sequence.
    """

    name = "contiguous-dp"

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        ordered = database.sorted_by_benefit_ratio()
        boundaries, cost = contiguous_optimal(ordered, num_channels)
        self._note(contiguous_cost=cost)
        groups = [list(ordered[start:stop]) for start, stop in boundaries]
        return ChannelAllocation(database, groups)
