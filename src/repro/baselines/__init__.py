"""Comparators and baselines for the evaluation.

Importing this package registers every baseline in the allocator
registry (:func:`repro.core.scheduler.make_allocator`), so experiment
configs can refer to algorithms by name.
"""

from repro.baselines.annealing import AnnealingAllocator, AnnealingParameters
from repro.baselines.exact import (
    BruteForceAllocator,
    ContiguousDPAllocator,
    brute_force_optimal,
    partitions_into_k,
    stirling2,
)
from repro.baselines.flat import (
    GreedyCostAllocator,
    RandomAllocator,
    RoundRobinAllocator,
)
from repro.baselines.gopt import GAParameters, GOPTAllocator
from repro.baselines.vfk import VFKAllocator, unit_size_contiguous_optimal
from repro.core.scheduler import register_allocator

__all__ = [
    "RoundRobinAllocator",
    "RandomAllocator",
    "GreedyCostAllocator",
    "VFKAllocator",
    "unit_size_contiguous_optimal",
    "GOPTAllocator",
    "GAParameters",
    "AnnealingAllocator",
    "AnnealingParameters",
    "BruteForceAllocator",
    "ContiguousDPAllocator",
    "brute_force_optimal",
    "partitions_into_k",
    "stirling2",
]

register_allocator("round-robin", RoundRobinAllocator)
register_allocator("random", RandomAllocator)
register_allocator("greedy", GreedyCostAllocator)
register_allocator("vfk", VFKAllocator)
register_allocator("gopt", GOPTAllocator)
register_allocator("annealing", AnnealingAllocator)
register_allocator("brute-force", BruteForceAllocator)
register_allocator("contiguous-dp", ContiguousDPAllocator)
