"""Algorithm GOPT — the genetic-algorithm comparator (paper, Section 4).

The paper obtains (near-)global-optimal allocations with a Genetic
Algorithm and calls the result GOPT; its own footnote concedes the value
is "still viewed as a suboptimum".  The paper omits the GA details "for
interest of space", so this implementation follows the standard
generational GA of Goldberg/Holland that the paper cites:

* **chromosome** — a length-N vector of channel ids (the assignment
  vector of an allocation);
* **fitness** — the negated Eq. (3) cost;
* **selection** — tournament selection;
* **crossover** — uniform crossover;
* **mutation** — per-gene reset to a random channel;
* **repair** — individuals with empty channels get random genes
  reassigned until every channel is populated (keeps the population
  inside the feasible region);
* **elitism** — the best individuals survive unchanged.

All population-level work is vectorised with numpy, so GOPT's runtime
scales as ``O(generations × population × N)`` — matching the paper's
observation that GOPT's execution time is more sensitive to ``N``
(chromosome length) than to ``K`` (gene alphabet size).

Two memetic refinements (both on by default, both documented in
DESIGN.md) make GOPT a *tight* proxy for the global optimum, which is
the role the paper assigns it:

* **heuristic seeding** — the initial population includes the DRP,
  DRP-CDS, contiguous-DP and greedy solutions, so GOPT never reports a
  cost above the best known heuristic;
* **polish** — mechanism CDS runs on the final best individual.

Neither changes the complexity picture: runtime stays dominated by the
GA generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.database import BroadcastDatabase
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError

__all__ = ["GAParameters", "GOPTAllocator"]


@dataclass(frozen=True)
class GAParameters:
    """Tuning knobs of the GOPT genetic algorithm.

    The defaults scale the population with the instance so solution
    quality stays roughly constant over the paper's parameter ranges
    (N = 60–180, K = 4–10).

    Attributes
    ----------
    population_size:
        Individuals per generation; ``None`` → ``max(60, 2N)``.
    generations:
        Generations to evolve; ``None`` → ``150 + 2N``.
    tournament_size:
        Individuals sampled per tournament (winner reproduces).
    crossover_rate:
        Probability that a child is produced by uniform crossover
        (otherwise it clones the first parent).
    mutation_rate:
        Per-gene probability of resetting to a random channel.
    elite_count:
        Individuals copied unchanged into the next generation.
    stagnation_limit:
        Stop early after this many generations without improvement;
        ``None`` disables early stopping (deterministic runtime, the
        setting used by the execution-time figures).
    """

    population_size: Optional[int] = None
    generations: Optional[int] = None
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.02
    elite_count: int = 2
    stagnation_limit: Optional[int] = 80

    def resolved_population(self, num_items: int) -> int:
        if self.population_size is not None:
            return self.population_size
        return max(60, 2 * num_items)

    def resolved_generations(self, num_items: int) -> int:
        if self.generations is not None:
            return self.generations
        return 150 + 2 * num_items


class GOPTAllocator(Allocator):
    """GOPT: genetic-algorithm channel allocation.

    Parameters
    ----------
    parameters:
        GA tuning knobs; defaults follow :class:`GAParameters`.
    seed:
        RNG seed; same seed + same instance ⇒ identical result.
    polish:
        Run mechanism CDS on the final best individual (default true).
    seed_with_heuristics:
        Inject the DRP, DRP-CDS, contiguous-DP and greedy solutions into
        the initial population (default true).  Guarantees GOPT is never
        worse than the best known heuristic, as befits an optimum proxy.
    """

    name = "gopt"

    def __init__(
        self,
        parameters: Optional[GAParameters] = None,
        *,
        seed: int = 0,
        polish: bool = True,
        seed_with_heuristics: bool = True,
    ) -> None:
        self._parameters = parameters or GAParameters()
        self._seed = seed
        self._polish = polish
        self._seed_with_heuristics = seed_with_heuristics

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        n = len(database)
        if not 1 <= num_channels <= n:
            raise InfeasibleProblemError(
                f"cannot allocate {n} item(s) to {num_channels} non-empty channels"
            )
        params = self._parameters
        rng = np.random.default_rng(self._seed)
        frequencies = np.array(
            [item.frequency for item in database.items], dtype=np.float64
        )
        sizes = np.array([item.size for item in database.items], dtype=np.float64)

        pop_size = params.resolved_population(n)
        generations = params.resolved_generations(n)
        population = rng.integers(0, num_channels, size=(pop_size, n))
        if self._seed_with_heuristics:
            seeds = _heuristic_seeds(database, num_channels)
            population[: len(seeds)] = seeds
        _repair(population, num_channels, rng)
        costs = _population_costs(population, frequencies, sizes, num_channels)

        best_index = int(np.argmin(costs))
        best_chromosome = population[best_index].copy()
        best_cost = float(costs[best_index])
        stagnant = 0
        generations_run = 0

        for _generation in range(generations):
            generations_run += 1
            parents = _tournament(costs, params.tournament_size, pop_size, rng)
            children = _crossover(
                population, parents, params.crossover_rate, rng
            )
            _mutate(children, num_channels, params.mutation_rate, rng)
            _repair(children, num_channels, rng)
            child_costs = _population_costs(
                children, frequencies, sizes, num_channels
            )
            # Elitism: the elite of the current generation overwrite the
            # worst children.
            elite_order = np.argsort(costs)[: params.elite_count]
            worst_children = np.argsort(child_costs)[::-1][: params.elite_count]
            children[worst_children] = population[elite_order]
            child_costs[worst_children] = costs[elite_order]
            population, costs = children, child_costs

            generation_best = int(np.argmin(costs))
            if costs[generation_best] < best_cost - 1e-15:
                best_cost = float(costs[generation_best])
                best_chromosome = population[generation_best].copy()
                stagnant = 0
            else:
                stagnant += 1
                if (
                    params.stagnation_limit is not None
                    and stagnant >= params.stagnation_limit
                ):
                    break

        allocation = ChannelAllocation.from_assignment_vector(
            database, best_chromosome.tolist(), num_channels
        )
        cds_moves = 0
        if self._polish:
            refined = cds_refine(allocation)
            allocation = refined.allocation
            cds_moves = refined.iterations
        self._note(
            generations=generations_run,
            population_size=pop_size,
            ga_best_cost=best_cost,
            polish_moves=cds_moves,
        )
        return allocation


def _heuristic_seeds(
    database: BroadcastDatabase, num_channels: int
) -> np.ndarray:
    """Assignment vectors of the cheap heuristics, as GA seed rows."""
    # Imported here to avoid an import cycle: the baselines package
    # imports this module at load time.
    from repro.baselines.exact import ContiguousDPAllocator
    from repro.baselines.flat import GreedyCostAllocator
    from repro.core.drp import drp_allocate

    rows = []
    rough = drp_allocate(database, num_channels)
    rows.append(rough.allocation.assignment_vector())
    rows.append(cds_refine(rough.allocation).allocation.assignment_vector())
    for allocator in (ContiguousDPAllocator(), GreedyCostAllocator()):
        outcome = allocator.allocate(database, num_channels)
        rows.append(outcome.allocation.assignment_vector())
    return np.array(rows, dtype=np.int64)


# ----------------------------------------------------------------------
# Vectorised GA primitives
# ----------------------------------------------------------------------
def _population_costs(
    population: np.ndarray,
    frequencies: np.ndarray,
    sizes: np.ndarray,
    num_channels: int,
) -> np.ndarray:
    """Eq.-(3) cost of every individual, in one bincount pass."""
    pop_size, n = population.shape
    flat = (
        population + (np.arange(pop_size)[:, None] * num_channels)
    ).ravel()
    length = pop_size * num_channels
    agg_f = np.bincount(
        flat, weights=np.tile(frequencies, pop_size), minlength=length
    ).reshape(pop_size, num_channels)
    agg_z = np.bincount(
        flat, weights=np.tile(sizes, pop_size), minlength=length
    ).reshape(pop_size, num_channels)
    return (agg_f * agg_z).sum(axis=1)


def _tournament(
    costs: np.ndarray,
    tournament_size: int,
    num_parents: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Indices of ``num_parents`` tournament winners (with replacement)."""
    entrants = rng.integers(0, len(costs), size=(num_parents, tournament_size))
    winner_slots = np.argmin(costs[entrants], axis=1)
    return entrants[np.arange(num_parents), winner_slots]


def _crossover(
    population: np.ndarray,
    parent_indices: np.ndarray,
    crossover_rate: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform crossover over consecutive parent pairs."""
    pop_size, n = population.shape
    first = population[parent_indices]
    second = population[np.roll(parent_indices, 1)]
    mask = rng.random(size=(pop_size, n)) < 0.5
    children = np.where(mask, first, second)
    skip = rng.random(size=pop_size) >= crossover_rate
    children[skip] = first[skip]
    return children


def _mutate(
    population: np.ndarray,
    num_channels: int,
    mutation_rate: float,
    rng: np.random.Generator,
) -> None:
    """Reset a random subset of genes to random channels, in place."""
    mask = rng.random(size=population.shape) < mutation_rate
    replacements = rng.integers(0, num_channels, size=population.shape)
    population[mask] = replacements[mask]


def _repair(
    population: np.ndarray,
    num_channels: int,
    rng: np.random.Generator,
) -> None:
    """Ensure every individual uses all channels, in place.

    For each individual missing some channel, a random gene currently on
    an over-populated channel is reassigned.  Only offending individuals
    are touched, so the common case stays vectorised-cheap.
    """
    pop_size, n = population.shape
    flat = (population + (np.arange(pop_size)[:, None] * num_channels)).ravel()
    counts = np.bincount(flat, minlength=pop_size * num_channels).reshape(
        pop_size, num_channels
    )
    offenders = np.flatnonzero((counts == 0).any(axis=1))
    for row in offenders:
        chromosome = population[row]
        channel_counts = counts[row].copy()
        for channel in np.flatnonzero(channel_counts == 0):
            donors = np.flatnonzero(channel_counts[chromosome] > 1)
            gene = int(rng.choice(donors))
            channel_counts[chromosome[gene]] -= 1
            chromosome[gene] = channel
            channel_counts[channel] += 1
