"""Simulated-annealing comparator (extension; not in the paper).

Included as an ablation reference for mechanism CDS: CDS is a *greedy*
best-improvement local search and stops at the first local optimum,
whereas annealing can escape local optima by accepting uphill moves.
Comparing the two quantifies how much quality the paper's simple rule
leaves on the table (empirically: very little — see
``benchmarks/bench_ablation_refiners.py``).

The move set is the same as CDS's (relocate one item to another
channel), evaluated in O(1) with Eq. (4); cooling is geometric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.allocation import ChannelAllocation
from repro.core.cds import cds_refine
from repro.core.cost import allocation_cost, move_delta
from repro.core.database import BroadcastDatabase
from repro.core.drp import drp_allocate
from repro.core.item import DataItem
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError

__all__ = ["AnnealingParameters", "AnnealingAllocator"]


@dataclass(frozen=True)
class AnnealingParameters:
    """Simulated-annealing schedule.

    Attributes
    ----------
    initial_temperature:
        Starting temperature, as a fraction of the seed allocation's
        cost (relative scaling keeps the schedule meaningful across
        workload magnitudes).
    cooling_rate:
        Geometric decay factor per epoch, in (0, 1).
    epochs:
        Number of temperature steps; ``None`` → ``60 + N // 2``.
    moves_per_epoch:
        Candidate moves per temperature step; ``None`` → ``10 × N``.
    """

    initial_temperature: float = 0.05
    cooling_rate: float = 0.9
    epochs: Optional[int] = None
    moves_per_epoch: Optional[int] = None

    def resolved_epochs(self, num_items: int) -> int:
        return self.epochs if self.epochs is not None else 60 + num_items // 2

    def resolved_moves(self, num_items: int) -> int:
        return (
            self.moves_per_epoch
            if self.moves_per_epoch is not None
            else 10 * num_items
        )


class AnnealingAllocator(Allocator):
    """Simulated annealing over single-item relocations.

    Seeds from DRP (like the paper's pipeline seeds CDS), then anneals,
    then finishes with a plain CDS descent so the output is always at a
    local optimum at least as good as the annealed state.
    """

    name = "annealing"

    def __init__(
        self,
        parameters: Optional[AnnealingParameters] = None,
        *,
        seed: int = 0,
    ) -> None:
        self._parameters = parameters or AnnealingParameters()
        self._seed = seed

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        n = len(database)
        if not 1 <= num_channels <= n:
            raise InfeasibleProblemError(
                f"cannot allocate {n} item(s) to {num_channels} non-empty channels"
            )
        params = self._parameters
        rng = np.random.default_rng(self._seed)
        seed_allocation = drp_allocate(database, num_channels).allocation
        groups: List[List[DataItem]] = [
            list(group) for group in seed_allocation.channels
        ]
        agg_f = [stat.frequency for stat in seed_allocation.channel_stats]
        agg_z = [stat.size for stat in seed_allocation.channel_stats]
        current_cost = allocation_cost(seed_allocation)

        temperature = params.initial_temperature * current_cost
        accepted = 0
        for _epoch in range(params.resolved_epochs(n)):
            for _move in range(params.resolved_moves(n)):
                origin = int(rng.integers(0, num_channels))
                if len(groups[origin]) <= 1:
                    continue  # never empty a channel
                position = int(rng.integers(0, len(groups[origin])))
                destination = int(rng.integers(0, num_channels - 1))
                if destination >= origin:
                    destination += 1
                item = groups[origin][position]
                delta = move_delta(
                    item,
                    origin_frequency=agg_f[origin],
                    origin_size=agg_z[origin],
                    dest_frequency=agg_f[destination],
                    dest_size=agg_z[destination],
                )
                # delta > 0 improves; accept worse moves with the
                # Metropolis probability exp(delta / T).
                if delta <= 0.0 and (
                    temperature <= 0.0
                    or rng.random() >= np.exp(delta / temperature)
                ):
                    continue
                groups[origin].pop(position)
                groups[destination].append(item)
                agg_f[origin] -= item.frequency
                agg_z[origin] -= item.size
                agg_f[destination] += item.frequency
                agg_z[destination] += item.size
                current_cost -= delta
                accepted += 1
            temperature *= params.cooling_rate

        annealed = ChannelAllocation(database, groups)
        refined = cds_refine(annealed)
        self._note(accepted_moves=accepted, final_descent_moves=refined.iterations)
        return refined.allocation
