"""Algorithm VF^K — the conventional-environment comparator.

Peng & Chen's VF^K ("variant-fanout" channel-allocation-tree algorithm,
Wireless Networks 2003) generates broadcast programs for the
*conventional* environment where every item has the same size.  The
paper uses it as the representative conventional algorithm (Figures
2–5): VF^K sees only access frequencies, so in a diverse environment it
misallocates large unpopular items and falls behind.

Reproduction note (also recorded in DESIGN.md): VF^K's tree growth
explores contiguous splits of the frequency-sorted item list, choosing
splits that minimise expected delay under the unit-size model.  We
implement the equivalent optimisation directly: an exact dynamic program
over contiguous splits of the frequency-descending order minimising the
unit-size cost

.. math::  \\sum_{i=1}^{K} F_i \\cdot N_i ,

which is the paper's Eq. (3) with every ``z = 1``.  This gives VF^K its
best-case behaviour (the DP dominates the greedy tree growth), so the
comparison is conservative: the diverse-environment gap the experiments
show is *not* an artefact of a weak VF^K implementation.

The resulting grouping is then evaluated under the true item sizes —
exactly how the paper scores VF^K in the diverse environment.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.core.allocation import ChannelAllocation
from repro.core.database import BroadcastDatabase
from repro.core.item import DataItem
from repro.core.scheduler import Allocator
from repro.exceptions import InfeasibleProblemError

__all__ = ["VFKAllocator", "unit_size_contiguous_optimal"]


def unit_size_contiguous_optimal(
    items: Sequence[DataItem],
    num_groups: int,
) -> Tuple[List[Tuple[int, int]], float]:
    """Optimal K-way contiguous partition under the unit-size cost.

    Minimises :math:`\\sum_g F_g \\cdot N_g` over contiguous partitions
    of ``items`` (which callers sort by frequency, descending).  Returns
    ``(boundaries, unit_cost)`` with half-open ``(start, stop)`` pairs.

    Complexity O(K·N²), the same DP shape as
    :func:`repro.core.partition.contiguous_optimal`.
    """
    n = len(items)
    if not 1 <= num_groups <= n:
        raise InfeasibleProblemError(
            f"cannot split {n} item(s) into {num_groups} non-empty groups"
        )
    prefix_f = [0.0] * (n + 1)
    for index, item in enumerate(items):
        prefix_f[index + 1] = prefix_f[index] + item.frequency

    def segment_cost(start: int, stop: int) -> float:
        return (prefix_f[stop] - prefix_f[start]) * (stop - start)

    infinity = math.inf
    dp = [[infinity] * (n + 1) for _ in range(num_groups + 1)]
    choice = [[0] * (n + 1) for _ in range(num_groups + 1)]
    dp[0][0] = 0.0
    for g in range(1, num_groups + 1):
        for i in range(g, n - (num_groups - g) + 1):
            best_value = infinity
            best_j = g - 1
            for j in range(g - 1, i):
                if dp[g - 1][j] == infinity:
                    continue
                value = dp[g - 1][j] + segment_cost(j, i)
                if value < best_value:
                    best_value = value
                    best_j = j
            dp[g][i] = best_value
            choice[g][i] = best_j
    boundaries: List[Tuple[int, int]] = []
    stop = n
    for g in range(num_groups, 0, -1):
        start = choice[g][stop]
        boundaries.append((start, stop))
        stop = start
    boundaries.reverse()
    return boundaries, dp[num_groups][n]


class VFKAllocator(Allocator):
    """VF^K: frequency-only contiguous allocation (conventional model).

    Sorts items by access frequency in descending order and partitions
    that order into K contiguous groups minimising the unit-size cost
    ``Σ F_i·N_i``.  Popular items land in small (short-cycle) channels —
    optimal when all items have equal size, oblivious to actual sizes.
    """

    name = "vfk"

    def _allocate(
        self, database: BroadcastDatabase, num_channels: int
    ) -> ChannelAllocation:
        ordered = database.sorted_by_frequency()
        boundaries, unit_cost = unit_size_contiguous_optimal(
            ordered, num_channels
        )
        groups = [list(ordered[start:stop]) for start, stop in boundaries]
        self._note(unit_size_cost=unit_cost)
        return ChannelAllocation(database, groups)
