"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  The subclasses draw the line
between problems in the *inputs* (bad item definitions, inconsistent
databases, infeasible channel counts) and problems in the *usage* of an
algorithm (e.g. asking an exact solver for an instance that is too large).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class InvalidItemError(ReproError):
    """A data item has an invalid access frequency or size."""


class InvalidDatabaseError(ReproError):
    """A broadcast database violates a structural invariant.

    Examples: empty database, duplicate item identifiers, access
    frequencies that do not form a probability distribution.
    """


class InvalidAllocationError(ReproError):
    """A channel allocation is not a valid partition of the database.

    Raised when a channel is empty where non-empty channels are required,
    when an item appears in more than one channel, or when the allocation
    does not cover the whole database.
    """


class InfeasibleProblemError(ReproError):
    """The requested allocation problem has no feasible solution.

    The canonical case: allocating ``N`` items to ``K > N`` non-empty
    channels.
    """


class SolverLimitError(ReproError):
    """An exact solver was asked to handle an instance beyond its limit.

    Brute-force enumeration of set partitions grows as the Stirling
    numbers of the second kind; the solver refuses instances whose size
    would make enumeration impractical instead of silently hanging.
    """


class SimulationError(ReproError):
    """The discrete-event simulation was configured or driven incorrectly."""


class ShardError(ReproError):
    """The shard fabric was driven incorrectly or hit corrupt state.

    Raised for malformed/incompatible shard manifests (schema or config
    digest mismatches, out-of-range shard indices) and for mid-file
    store corruption that cannot be explained as a torn trailing write.
    A *torn trailing record* — the expected artifact of a killed shard —
    is not an error: the store drops it and the cell reruns on resume.
    """


class VerificationError(ReproError):
    """The verification layer itself was driven incorrectly.

    Raised for malformed fuzz configurations (unknown check names,
    unknown injectable bugs, unreadable failure files) — *not* for
    detected invariant violations, which are reported as data
    (:class:`repro.verify.invariants.Violation`) so a fuzz run can
    collect, shrink and serialize them instead of aborting.
    """
