"""repro — diverse data broadcasting channel allocation.

A from-scratch reproduction of *"On Exploring Channel Allocation in the
Diverse Data Broadcasting Environment"* (Hung & Chen, ICDCS 2005):

* the analytical waiting-time / cost model of diverse data broadcasting,
* Algorithm **DRP** (Dimension Reduction Partitioning) and mechanism
  **CDS** (Cost-Diminishing Selection),
* the paper's comparators — **VF^K** and the genetic-algorithm **GOPT** —
  plus exact solvers and simple baselines,
* Zipf/diversity workload generation,
* a discrete-event broadcast simulator that validates the analytical
  model, and
* an experiment harness regenerating every figure of the paper.

Quickstart
----------
>>> from repro import WorkloadSpec, generate_database, DRPCDSAllocator
>>> database = generate_database(WorkloadSpec(num_items=60, seed=7))
>>> outcome = DRPCDSAllocator().allocate(database, num_channels=5)
>>> outcome.allocation.num_channels
5
"""

from repro.core import (
    AllocationOutcome,
    Allocator,
    BACKENDS,
    BroadcastDatabase,
    CDSOnlyAllocator,
    CDSResult,
    ChannelAllocation,
    DataItem,
    DEFAULT_BANDWIDTH,
    DRPAllocator,
    DRPCDSAllocator,
    DRPResult,
    HAS_NUMPY,
    allocation_cost,
    available_allocators,
    average_waiting_time,
    best_split,
    best_split_in,
    cds_refine,
    channel_waiting_time,
    contiguous_optimal,
    drp_allocate,
    group_cost,
    item_waiting_time,
    make_allocator,
    move_delta,
    register_allocator,
    resolve_backend,
    waiting_time_from_cost,
)
from repro.io import (
    load_allocation,
    load_database,
    load_database_csv,
    save_allocation,
    save_database,
    save_database_csv,
)
from repro.exceptions import (
    InfeasibleProblemError,
    InvalidAllocationError,
    InvalidDatabaseError,
    InvalidItemError,
    ReproError,
    SimulationError,
    SolverLimitError,
)
from repro.workloads import (
    WorkloadSpec,
    generate_database,
    paper_database,
    zipf_frequencies,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "DataItem",
    "BroadcastDatabase",
    "ChannelAllocation",
    # cost model
    "DEFAULT_BANDWIDTH",
    "group_cost",
    "allocation_cost",
    "average_waiting_time",
    "channel_waiting_time",
    "item_waiting_time",
    "waiting_time_from_cost",
    "move_delta",
    # algorithms
    "drp_allocate",
    "DRPResult",
    "cds_refine",
    "CDSResult",
    "best_split",
    "best_split_in",
    "contiguous_optimal",
    # backends
    "BACKENDS",
    "HAS_NUMPY",
    "resolve_backend",
    "Allocator",
    "AllocationOutcome",
    "DRPAllocator",
    "DRPCDSAllocator",
    "CDSOnlyAllocator",
    "register_allocator",
    "make_allocator",
    "available_allocators",
    # workloads
    "WorkloadSpec",
    "generate_database",
    "paper_database",
    "zipf_frequencies",
    # persistence
    "save_database",
    "load_database",
    "save_allocation",
    "load_allocation",
    "save_database_csv",
    "load_database_csv",
    # exceptions
    "ReproError",
    "InvalidItemError",
    "InvalidDatabaseError",
    "InvalidAllocationError",
    "InfeasibleProblemError",
    "SolverLimitError",
    "SimulationError",
]
