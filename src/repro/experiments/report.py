"""One-command reproduction report.

:func:`generate_report` runs every figure experiment plus the
worked-example check and the exact-gap experiment, and renders a single
markdown document with the measured tables, gap summaries and
qualitative shape checks — the artifact a reviewer would want from
"reproduce this paper" without reading any code.

Exposed as ``python -m repro report``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.analysis.summary import summarize_experiment, trend_direction
from repro.core.cds import cds_refine
from repro.core.drp import drp_allocate
from repro.experiments.figures import FIGURE_METRICS, FIGURES
from repro.experiments.gap import run_gap_experiment
from repro.experiments.records import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.workloads.paper_profile import (
    PAPER_CDS_COST,
    PAPER_DRP_COST,
    PAPER_NUM_CHANNELS,
    paper_database,
)

__all__ = ["generate_report"]

ProgressCallback = Callable[[str], None]

#: The trend the paper's prose predicts per waiting-time figure.
_EXPECTED_TRENDS = {
    "figure2": "decreasing",   # more channels, less waiting
    "figure3": "increasing",   # more items, more waiting
    "figure4": "increasing",   # more diversity, more waiting
    "figure5": "decreasing",   # more skew, less waiting
}


def _markdown_table(result: ExperimentResult, metric: str) -> List[str]:
    lines = [
        "| "
        + " | ".join([result.sweep_parameter] + list(result.algorithms))
        + " |",
        "|" + "---|" * (1 + len(result.algorithms)),
    ]
    for value in result.sweep_values():
        cells = [f"{value:g}"]
        for algorithm in result.algorithms:
            cells.append(
                f"{getattr(result.cell(value, algorithm), metric):.4f}"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def generate_report(
    *,
    replications: Optional[int] = None,
    gap_instances: int = 6,
    workers: Union[int, str, None] = None,
    output: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
) -> str:
    """Run the full reproduction and render a markdown report.

    Parameters
    ----------
    replications:
        Override every figure's replication count (None = paper
        defaults; use 1–2 for a quick pass).
    gap_instances:
        Instances for the exact optimality-gap section.
    workers:
        Worker processes for the figure sweeps and the gap instances
        (``None`` = serial or ``$REPRO_WORKERS``; the report content is
        identical for any worker count).
    output:
        Optional path to write the markdown to.
    progress:
        Callback for per-section status lines.

    Returns
    -------
    str
        The markdown document.
    """
    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    started = time.time()
    lines: List[str] = [
        "# Reproduction report",
        "",
        "Hung & Chen, *On Exploring Channel Allocation in the Diverse "
        "Data Broadcasting Environment*, ICDCS 2005.",
        "",
    ]

    # ------------------------------------------------------------------
    # Worked example (Tables 2-4).
    # ------------------------------------------------------------------
    note("worked example (Tables 2-4)")
    database = paper_database()
    rough = drp_allocate(
        database, PAPER_NUM_CHANNELS, split_policy="max-reduction"
    )
    refined = cds_refine(rough.allocation)
    drp_ok = abs(rough.cost - PAPER_DRP_COST) < 0.02
    cds_ok = abs(refined.cost - PAPER_CDS_COST) < 0.02
    lines += [
        "## Worked example (Tables 2–4)",
        "",
        f"- DRP cost: {rough.cost:.2f} (paper {PAPER_DRP_COST}) — "
        f"{'MATCH' if drp_ok else 'MISMATCH'}",
        f"- CDS local optimum: {refined.cost:.2f} (paper {PAPER_CDS_COST}) — "
        f"{'MATCH' if cds_ok else 'MISMATCH'}",
        "",
    ]

    # ------------------------------------------------------------------
    # Figures 2-7.
    # ------------------------------------------------------------------
    results: Dict[str, ExperimentResult] = {}
    for figure_id in sorted(FIGURES):
        note(f"running {figure_id}")
        config = FIGURES[figure_id]()
        if replications is not None:
            config = config.scaled_down(replications=replications)
        results[figure_id] = run_experiment(config, workers=workers)

    for figure_id in sorted(FIGURES):
        result = results[figure_id]
        metric = FIGURE_METRICS[figure_id]
        unit = "seconds" if metric == "mean_waiting_time" else "exec seconds"
        lines += [
            f"## {figure_id}: {result.description}",
            "",
            f"Metric: {unit}.",
            "",
        ]
        lines += _markdown_table(result, metric)
        lines.append("")
        if metric == "mean_waiting_time" and "gopt" in result.algorithms:
            lines.append("Gap vs GOPT (mean over sweep):")
            lines.append("")
            for summary in summarize_experiment(result, reference="gopt"):
                if summary.algorithm == "gopt":
                    continue
                lines.append(
                    f"- {summary.algorithm}: "
                    f"{summary.mean_gap_percent:+.2f}% "
                    f"(worst {summary.max_gap * 100:+.2f}%)"
                )
            lines.append("")
        expected = _EXPECTED_TRENDS.get(figure_id)
        if expected is not None:
            series = results[figure_id].series(result.algorithms[-1], metric)
            # Tolerance scaled to the series: replication noise between
            # adjacent sweep points should not fail a clear global trend.
            span = max(y for _, y in series)
            observed = trend_direction(series, tolerance=0.1 * span)
            verdict = "OK" if observed == expected else "CHECK"
            lines.append(
                f"Shape check: expected *{expected}*, observed "
                f"*{observed}* — {verdict}."
            )
            lines.append("")

    # ------------------------------------------------------------------
    # Exact optimality gaps.
    # ------------------------------------------------------------------
    note("exact optimality gaps")
    gaps = run_gap_experiment(instances=gap_instances, workers=workers)
    lines += [
        "## True optimality gaps (brute-force ground truth)",
        "",
        f"{gap_instances} instances, N=10, K=3.",
        "",
        "| algorithm | mean gap % | worst gap % | exact hits |",
        "|---|---|---|---|",
    ]
    for report in gaps:
        lines.append(
            f"| {report.algorithm} | {report.summary.mean * 100:.3f} | "
            f"{report.worst * 100:.3f} | "
            f"{report.exact_hits}/{len(report.gaps)} |"
        )
    lines += [
        "",
        f"_Generated in {time.time() - started:.1f}s._",
        "",
    ]

    text = "\n".join(lines)
    if output is not None:
        Path(output).write_text(text)
    return text
