"""Parallel experiment execution: deterministic fan-out over processes.

The sweep grid of an :class:`~repro.experiments.config.ExperimentConfig`
is embarrassingly parallel — every (sweep value, replication, algorithm)
cell is independent, and the workload of a cell is fully determined by
``config.seed_for(value_index, replication)``.  This module exploits
that: cells are described by tiny :class:`CellSpec` descriptors, fanned
out over a :class:`concurrent.futures.ProcessPoolExecutor`, executed by
workers that *re-derive* the workload from the config (so only the
config, the descriptors and small :class:`CellOutcome` result records
ever cross the pipe), and merged back **in grid order** — which makes
the aggregated rows bitwise-identical to a serial run for any worker
count.

Three design points worth knowing about:

* **Workload memo** — workers keep a small per-process cache of
  generated databases keyed by :class:`WorkloadSpec`, so the cells of
  one (sweep value, replication) pair that land on the same worker
  synthesise their shared database once instead of once per algorithm.
* **Error capture** — a cell whose allocator raises returns a
  :class:`CellOutcome` carrying the error message instead of poisoning
  the pool; the merge layer records it as a
  :class:`~repro.experiments.records.CellError` and aggregates the
  surviving replications.
* **Timeouts** — ``cell_timeout`` bounds how long the merge loop waits
  for any single cell result (measured from the moment the cell's
  result is awaited).  A timed-out cell degrades to a recorded error;
  the worker executing it is not interrupted, so treat the timeout as a
  liveness guard for the sweep, not a hard kill.

:func:`~repro.experiments.runner.run_experiment` is the intended entry
point; it routes through :func:`execute_cells` whenever ``workers`` (or
the ``REPRO_WORKERS`` environment variable) asks for the fan-out layer.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import repro.baselines  # noqa: F401  (registers baseline allocators)
from repro import obs
from repro.core.cost import average_waiting_time
from repro.core.database import BroadcastDatabase
from repro.core.incremental import CompactAllocation
from repro.core.scheduler import make_allocator
from repro.experiments.config import ExperimentConfig
from repro.workloads.generator import WorkloadSpec, generate_database

__all__ = [
    "CellSpec",
    "CellOutcome",
    "WorkloadMemo",
    "WORKERS_ENV_VAR",
    "auto_workers",
    "resolve_workers",
    "build_cell_grid",
    "run_cell",
    "execute_cells",
    "map_ordered",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV_VAR = "REPRO_WORKERS"

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass(frozen=True)
class CellSpec:
    """Descriptor of one (sweep value, replication, algorithm) cell.

    Deliberately tiny — this is all that crosses the pipe to a worker;
    the workload itself is re-derived from the config's seed scheme.
    """

    value_index: int
    replication: int
    algorithm: str


@dataclass(frozen=True)
class CellOutcome:
    """Result of one cell: measurements on success, a message on failure.

    Exactly one of the two shapes occurs: ``error is None`` with all
    three measurements set, or ``error`` set with the measurements None.

    The observability fields ride the same pipe: ``worker_pid`` and the
    wall-clock ``started_unix``/``finished_unix`` pair let the parent
    compute queue-wait vs compute time per cell, and — when tracing /
    metrics are enabled — ``spans`` / ``metrics`` carry the worker's
    finished span payloads and counter snapshot for deterministic
    grid-order merging (all ``None`` when observability is off, so the
    descriptor stays tiny).
    """

    value_index: int
    replication: int
    algorithm: str
    cost: Optional[float] = None
    waiting_time: Optional[float] = None
    elapsed_seconds: Optional[float] = None
    error: Optional[str] = None
    worker_pid: Optional[int] = None
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    spans: Optional[Tuple[Dict[str, Any], ...]] = None
    metrics: Optional[Dict[str, Any]] = None
    #: The cell's allocation as a compact item-id→channel vector;
    #: populated only for warm-start sweeps (``collect_seed=True``), so
    #: later cells can warm-start from it.  Stripped before outcomes
    #: leave :func:`execute_cells` — it exists to ride the result pipe.
    seed_result: Optional[CompactAllocation] = None


class WorkloadMemo:
    """Small FIFO cache of generated databases, keyed by workload spec.

    One lives in every worker process (and one serves the inline
    ``workers=1`` path) so that the per-algorithm cells of one
    (sweep value, replication) pair generate their shared database once.
    The capacity only needs to cover the few specs a worker interleaves
    at a time; FIFO eviction keeps the memory footprint bounded for
    arbitrarily long sweeps.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._cache: Dict[WorkloadSpec, BroadcastDatabase] = {}
        self.hits = 0
        self.misses = 0

    def get(self, spec: WorkloadSpec) -> BroadcastDatabase:
        """The database for ``spec``, generated on first request."""
        database = self._cache.get(spec)
        if database is not None:
            self.hits += 1
            return database
        self.misses += 1
        database = generate_database(spec)
        if len(self._cache) >= self._max_entries:
            # FIFO eviction: drop the oldest insertion.
            self._cache.pop(next(iter(self._cache)))
        self._cache[spec] = database
        return database

    def __len__(self) -> int:
        return len(self._cache)


def auto_workers() -> int:
    """The worker count ``"auto"`` resolves to: one per *usable* CPU.

    Clamped to ``os.cpu_count()`` and, where the platform reports it,
    the process's CPU affinity mask — inside a container pinned to one
    core, ``os.cpu_count()`` reports the host's cores, and fanning a
    sweep out that wide just pays pickling overhead for a 0.9×
    "speedup".  Never below 1.
    """
    count = os.cpu_count() or 1
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # platform without affinity masks
        affinity = count
    return max(1, min(count, affinity))


def resolve_workers(
    workers: Union[int, str, None] = None,
) -> Optional[int]:
    """Normalise a worker request to ``None`` (serial) or a count >= 1.

    ``None`` defers to the ``REPRO_WORKERS`` environment variable; when
    that is unset too, the answer is ``None`` — the caller should take
    the plain serial path.  ``"auto"`` (or any count < 1) means "one
    worker per usable CPU" — see :func:`auto_workers` for the clamp.
    An explicit integer is honoured as given (oversubscription stays
    possible when deliberately requested).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if not raw:
            return None
        workers = raw
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return auto_workers()
        try:
            workers = int(workers)
        except ValueError:
            raise ValueError(
                f"worker count must be an integer or 'auto', got {workers!r}"
            ) from None
    if workers < 1:
        return auto_workers()
    return int(workers)


def build_cell_grid(config: ExperimentConfig) -> List[CellSpec]:
    """Every cell of the sweep, in canonical (value, replication,
    algorithm) order — the order the serial runner visits them, and the
    order results are merged back in."""
    return [
        CellSpec(value_index=value_index, replication=replication, algorithm=algorithm)
        for value_index in range(len(config.sweep_values))
        for replication in range(config.replications)
        for algorithm in config.algorithms
    ]


def run_cell(
    config: ExperimentConfig,
    spec: CellSpec,
    memo: Optional[WorkloadMemo] = None,
    *,
    warm_seed: Optional[CompactAllocation] = None,
    collect_seed: bool = False,
) -> CellOutcome:
    """Execute one cell, capturing any failure as a recorded error.

    ``warm_seed`` — optional compact allocation from a neighbouring
    finished cell; it is handed to the allocator as a warm-start seed
    (algorithms without warm-start support ignore it).  With
    ``collect_seed`` the outcome carries the cell's own allocation in
    compact form so the scheduler can seed later cells from it.

    Emits an ``experiment.cell`` span (worker pid, sweep coordinates,
    outcome or error tag) on whatever tracer is active in the executing
    process — the parent's for serial runs, the worker's own for pooled
    runs, whose spans the parent later adopts.
    """
    started = time.time()
    with obs.span(
        "experiment.cell",
        value_index=spec.value_index,
        replication=spec.replication,
        algorithm=spec.algorithm,
        worker_pid=os.getpid(),
        warm_seeded=warm_seed is not None,
    ) as span:
        try:
            value = config.sweep_values[spec.value_index]
            point = config.point_parameters(value)
            workload = WorkloadSpec(
                num_items=point.num_items,
                skewness=point.skewness,
                diversity=point.diversity,
                seed=config.seed_for(spec.value_index, spec.replication),
            )
            database = (
                memo.get(workload) if memo is not None else generate_database(workload)
            )
            allocator = make_allocator(spec.algorithm)
            outcome = allocator.allocate(
                database, point.num_channels, initial=warm_seed
            )
            span.update(cost=outcome.cost, compute_seconds=outcome.elapsed_seconds)
            registry = obs.get_metrics()
            if registry.enabled:
                registry.counter("experiment.cells").inc()
                registry.counter(
                    "experiment.cells_by_algorithm", algorithm=spec.algorithm
                ).inc()
                registry.histogram("experiment.cell_seconds").observe(
                    outcome.elapsed_seconds
                )
                if warm_seed is not None:
                    registry.counter("experiment.warm_seeded_cells").inc()
            return CellOutcome(
                value_index=spec.value_index,
                replication=spec.replication,
                algorithm=spec.algorithm,
                cost=outcome.cost,
                waiting_time=average_waiting_time(
                    outcome.allocation, bandwidth=config.bandwidth
                ),
                elapsed_seconds=outcome.elapsed_seconds,
                worker_pid=os.getpid(),
                started_unix=started,
                finished_unix=time.time(),
                seed_result=(
                    CompactAllocation.from_allocation(
                        outcome.allocation, cost=outcome.cost
                    )
                    if collect_seed
                    else None
                ),
            )
        except Exception as exc:  # noqa: BLE001 — degrade to a recorded error
            message = f"{type(exc).__name__}: {exc}"
            span.set("error", message)
            registry = obs.get_metrics()
            if registry.enabled:
                registry.counter("experiment.cell_errors").inc()
            return CellOutcome(
                value_index=spec.value_index,
                replication=spec.replication,
                algorithm=spec.algorithm,
                error=message,
                worker_pid=os.getpid(),
                started_unix=started,
                finished_unix=time.time(),
            )


# ----------------------------------------------------------------------
# Worker-process side.  Globals are installed once per worker by the
# pool initializer; tasks then carry only a CellSpec.
# ----------------------------------------------------------------------
_WORKER_CONFIG: Optional[ExperimentConfig] = None
_WORKER_MEMO: Optional[WorkloadMemo] = None

#: How often a live worker ships its in-progress metrics snapshot.
LIVE_SHIP_INTERVAL = 0.25


def _live_shipper(channel: Any, interval: float) -> None:
    """Worker-side daemon: periodically ship the in-progress snapshot.

    The shipped snapshot is *cumulative since the worker's last cell
    drain* — a plain ``snapshot()``, never a drain — so the
    authoritative per-cell payloads are untouched and the parent can
    overlay it on the merged registry for the live view.  Any channel
    failure (the parent went away) silently ends shipping; live
    telemetry must never take a worker down.
    """
    pid = os.getpid()
    while True:
        time.sleep(interval)
        try:
            registry = obs.get_metrics()
            if registry.enabled:
                channel.put((pid, registry.snapshot()))
        except Exception:  # noqa: BLE001 — parent gone / manager shut down
            return


def _initialize_worker(
    config: ExperimentConfig,
    obs_options: Optional[Dict[str, bool]] = None,
    live_channel: Any = None,
    live_interval: float = LIVE_SHIP_INTERVAL,
) -> None:
    global _WORKER_CONFIG, _WORKER_MEMO
    import repro.baselines  # noqa: F401  (register allocators in the child)

    _WORKER_CONFIG = config
    _WORKER_MEMO = WorkloadMemo()
    # Install *fresh* observability instances matching the parent's
    # switches.  Crucial under fork: a child must not inherit (and later
    # re-ship) spans the parent already recorded.
    obs.configure(**(obs_options or {}))
    if live_channel is not None and obs.get_metrics().enabled:
        threading.Thread(
            target=_live_shipper,
            args=(live_channel, live_interval),
            name="repro-live-shipper",
            daemon=True,
        ).start()


def _run_cell_in_worker(
    spec: CellSpec,
    warm_seed: Optional[CompactAllocation] = None,
    collect_seed: bool = False,
) -> CellOutcome:
    if _WORKER_CONFIG is None:  # pragma: no cover — initializer always ran
        raise RuntimeError("worker used before initialization")
    outcome = run_cell(
        _WORKER_CONFIG,
        spec,
        _WORKER_MEMO,
        warm_seed=warm_seed,
        collect_seed=collect_seed,
    )
    # Attach this cell's observability payload to the outcome so it can
    # ride the existing result pipe; draining keeps worker memory flat.
    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    if tracer.enabled or registry.enabled:
        outcome = replace(
            outcome,
            spans=tuple(tracer.drain_payload()) if tracer.enabled else None,
            metrics=registry.drain_snapshot() if registry.enabled else None,
        )
    return outcome


class _LiveCollector:
    """Parent-side drain of worker live snapshots into obs overlays.

    Active only when a live consumer (``/metrics`` server or JSONL
    stream) is running *and* metrics are enabled; otherwise ``queue``
    stays ``None`` and the pool runs exactly as before — zero extra
    processes, threads or pickling.  When active, a
    ``multiprocessing.Manager`` queue (picklable through the pool
    initializer, unlike a raw ``mp.Queue``) carries ``(pid, snapshot)``
    pairs from the worker shippers to a parent daemon thread that folds
    them into :func:`repro.obs.update_live_overlay`.  Overlays feed
    only the live view; the authoritative grid-order merge is
    untouched, so final metrics stay bitwise-identical to serial.
    """

    def __init__(self) -> None:
        self.queue: Any = None
        self._manager: Any = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def __enter__(self) -> "_LiveCollector":
        if not (obs.live_telemetry_active() and obs.get_metrics().enabled):
            return self
        import multiprocessing

        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-live-drain", daemon=True
        )
        self._thread.start()
        return self

    def _drain(self) -> None:
        while not self._stop.is_set():
            try:
                pid, snapshot = self.queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except Exception:  # noqa: BLE001 — manager torn down mid-get
                return
            obs.update_live_overlay(pid, snapshot)

    def __exit__(self, *exc_info: Any) -> bool:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=2.0)
        if self._manager is not None:
            self._manager.shutdown()
        # The grid-order merge already holds everything the workers
        # produced; lingering overlays would double-count it.
        obs.clear_live_overlays()
        return False


def _collect_outcome(
    spec: CellSpec,
    future: "Any",
    *,
    cell_timeout: Optional[float],
    tracer: "Any",
    registry: "Any",
    submitted_unix: float,
) -> CellOutcome:
    """Await one worker future, degrading failures to recorded errors
    and adopting the worker's observability payload (see
    :func:`execute_cells`)."""
    try:
        outcome = future.result(timeout=cell_timeout)
    except _FutureTimeout:
        future.cancel()
        outcome = CellOutcome(
            value_index=spec.value_index,
            replication=spec.replication,
            algorithm=spec.algorithm,
            error=(
                f"cell timed out after {cell_timeout}s "
                "(worker not interrupted)"
            ),
        )
        tracer.instant(
            "experiment.cell_timeout",
            value_index=spec.value_index,
            replication=spec.replication,
            algorithm=spec.algorithm,
            timeout_seconds=cell_timeout,
        )
        registry.counter("experiment.cell_timeouts").inc()
    except Exception as exc:  # noqa: BLE001 — e.g. BrokenProcessPool
        outcome = CellOutcome(
            value_index=spec.value_index,
            replication=spec.replication,
            algorithm=spec.algorithm,
            error=f"{type(exc).__name__}: {exc}",
        )
        tracer.instant(
            "experiment.cell_failure",
            value_index=spec.value_index,
            replication=spec.replication,
            algorithm=spec.algorithm,
            error=outcome.error,
        )
        registry.counter("experiment.cell_errors").inc()
    else:
        # Merge the worker's observability payload, in grid
        # order (this loop), so merged traces and metrics are
        # deterministic for any completion order.  Queue wait is
        # measured by the parent: time from fan-out submission
        # until the worker actually started the cell.
        queue_wait = (
            max(0.0, outcome.started_unix - submitted_unix)
            if outcome.started_unix is not None
            else None
        )
        if queue_wait is not None:
            registry.histogram("experiment.queue_wait_seconds").observe(
                queue_wait
            )
        if outcome.spans and tracer.enabled:
            root_attributes: Dict[str, Any] = {}
            if queue_wait is not None:
                root_attributes["queue_wait_seconds"] = queue_wait
            tracer.adopt(outcome.spans, root_attributes=root_attributes)
        if outcome.metrics and registry.enabled:
            registry.merge(outcome.metrics)
            if outcome.worker_pid is not None:
                # The authoritative drain superseded whatever live
                # overlay this worker last shipped; the next periodic
                # ship (covering its next cell) restores the overlay.
                obs.clear_live_overlay(outcome.worker_pid)
        if outcome.spans is not None or outcome.metrics is not None:
            outcome = replace(outcome, spans=None, metrics=None)
    return outcome


def execute_cells(
    config: ExperimentConfig,
    cells: Sequence[CellSpec],
    *,
    workers: int = 1,
    cell_timeout: Optional[float] = None,
    warm_start: bool = False,
) -> List[CellOutcome]:
    """Run ``cells`` and return their outcomes in the given order.

    ``workers=1`` executes inline (same code path, no processes, no
    timeout enforcement); ``workers>1`` fans out over a process pool.
    The returned list is always ordered like ``cells`` regardless of
    completion order — the ordered merge that makes parallel runs
    reproduce serial results exactly.

    ``warm_start`` routes through the wave scheduler of
    :func:`_execute_cells_warm`: warm-startable algorithms receive the
    nearest finished neighbour's allocation as a compact seed.  Results
    may legitimately differ from a cold sweep (CDS converges to a
    different local optimum), but stay identical across worker counts.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    if warm_start:
        return _execute_cells_warm(
            config, cells, workers=workers, cell_timeout=cell_timeout
        )
    if workers == 1 or len(cells) <= 1:
        memo = WorkloadMemo()
        return [run_cell(config, spec, memo) for spec in cells]

    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    with _LiveCollector() as live, ProcessPoolExecutor(
        max_workers=min(workers, len(cells)),
        initializer=_initialize_worker,
        initargs=(config, obs.worker_options(), live.queue),
    ) as pool:
        submitted_unix = time.time()
        futures = [pool.submit(_run_cell_in_worker, spec) for spec in cells]
        for index, (spec, future) in enumerate(zip(cells, futures)):
            outcomes[index] = _collect_outcome(
                spec,
                future,
                cell_timeout=cell_timeout,
                tracer=tracer,
                registry=registry,
                submitted_unix=submitted_unix,
            )
    return [outcome for outcome in outcomes if outcome is not None]


def _execute_cells_warm(
    config: ExperimentConfig,
    cells: List[CellSpec],
    *,
    workers: int,
    cell_timeout: Optional[float],
) -> List[CellOutcome]:
    """Warm-start wave scheduler over the sweep grid.

    Seeds follow a fixed dependency DAG so that every cell receives the
    same seed for any worker count (determinism across ``workers``):

    * ``(value, replication 0)`` cells are seeded by the replication-0
      result of the **nearest smaller sweep value** whose problem shape
      (N, K) matches — "the nearest finished value's allocation", shipped
      to the worker as a compact item-id→channel vector;
    * ``(value, replication > 0)`` cells are seeded by their own value's
      replication-0 result — the cross-replication reuse of the cell's
      allocation cache.

    Execution proceeds value by value in two sub-waves (replication 0,
    then the rest), so the DAG's edges always point at already-finished
    waves.  Sweeps over N or K yield no compatible neighbours and every
    replication-0 cell runs cold — exactly the cold sweep.
    """
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    rep0: Dict[Tuple[int, str], CompactAllocation] = {}

    def shape_ok(seed: CompactAllocation, value_index: int) -> bool:
        point = config.point_parameters(config.sweep_values[value_index])
        return (
            seed.num_channels == point.num_channels
            and len(seed.item_ids) == point.num_items
        )

    def seed_for(spec: CellSpec) -> Optional[CompactAllocation]:
        if spec.replication > 0:
            seed = rep0.get((spec.value_index, spec.algorithm))
            if seed is not None and shape_ok(seed, spec.value_index):
                return seed
        for value_index in range(spec.value_index - 1, -1, -1):
            seed = rep0.get((value_index, spec.algorithm))
            if seed is not None and shape_ok(seed, spec.value_index):
                return seed
        return None

    def harvest(index: int, spec: CellSpec, outcome: CellOutcome) -> None:
        if outcome.seed_result is not None:
            if spec.replication == 0:
                rep0[(spec.value_index, spec.algorithm)] = outcome.seed_result
            outcome = replace(outcome, seed_result=None)
        outcomes[index] = outcome

    indexed = list(enumerate(cells))
    if workers == 1 or len(cells) <= 1:
        memo = WorkloadMemo()
        for index, spec in indexed:
            harvest(
                index,
                spec,
                run_cell(
                    config,
                    spec,
                    memo,
                    warm_seed=seed_for(spec),
                    collect_seed=spec.replication == 0,
                ),
            )
        return [outcome for outcome in outcomes if outcome is not None]

    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    by_value: Dict[int, List[Tuple[int, CellSpec]]] = {}
    for index, spec in indexed:
        by_value.setdefault(spec.value_index, []).append((index, spec))
    with _LiveCollector() as live, ProcessPoolExecutor(
        max_workers=min(workers, len(cells)),
        initializer=_initialize_worker,
        initargs=(config, obs.worker_options(), live.queue),
    ) as pool:
        for value_index in sorted(by_value):
            members = by_value[value_index]
            for wave in (
                [(i, s) for i, s in members if s.replication == 0],
                [(i, s) for i, s in members if s.replication > 0],
            ):
                if not wave:
                    continue
                submitted_unix = time.time()
                futures = [
                    pool.submit(
                        _run_cell_in_worker,
                        spec,
                        seed_for(spec),
                        spec.replication == 0,
                    )
                    for _, spec in wave
                ]
                for (index, spec), future in zip(wave, futures):
                    harvest(
                        index,
                        spec,
                        _collect_outcome(
                            spec,
                            future,
                            cell_timeout=cell_timeout,
                            tracer=tracer,
                            registry=registry,
                            submitted_unix=submitted_unix,
                        ),
                    )
    return [outcome for outcome in outcomes if outcome is not None]


def map_ordered(
    function: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: Optional[int] = 1,
) -> List[_R]:
    """``[function(x) for x in items]``, optionally over a process pool.

    Results come back in input order, so a parallel map is a drop-in
    replacement for the serial comprehension wherever ``function`` is
    deterministic.  ``function`` must be picklable (module-level) and
    is responsible for its own error handling — an exception propagates,
    matching the serial semantics.  Used by the optimality-gap
    experiment; the figure sweeps use the richer :func:`execute_cells`.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = [pool.submit(function, item) for item in items]
        return [future.result() for future in futures]
