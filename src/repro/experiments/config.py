"""Experiment configuration — Table 5 of the paper as code.

An :class:`ExperimentConfig` fixes every simulation parameter except the
one being swept, names the algorithms to compare, and pins the seeds of
the replications.  The constants below are the paper's Table 5 ranges;
where the paper leaves the *fixed* value of a non-swept parameter
unstated, we fix it mid-range (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.core.cost import DEFAULT_BANDWIDTH
from repro.exceptions import InvalidDatabaseError

__all__ = [
    "ExperimentConfig",
    "SWEEPABLE_PARAMETERS",
    "TABLE5_CHANNELS",
    "TABLE5_ITEMS",
    "TABLE5_DIVERSITY",
    "TABLE5_SKEWNESS",
    "FIXED_NUM_ITEMS",
    "FIXED_NUM_CHANNELS",
    "FIXED_DIVERSITY",
    "FIXED_SKEWNESS",
    "PAPER_ALGORITHMS",
]

#: Table 5 sweep ranges.
TABLE5_CHANNELS: Tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10)
TABLE5_ITEMS: Tuple[int, ...] = (60, 90, 120, 150, 180)
TABLE5_DIVERSITY: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
TABLE5_SKEWNESS: Tuple[float, ...] = (0.4, 0.7, 1.0, 1.3, 1.6)

#: Mid-range fixed values used while sweeping a different parameter.
FIXED_NUM_ITEMS = 120
FIXED_NUM_CHANNELS = 7
FIXED_DIVERSITY = 1.5
FIXED_SKEWNESS = 0.8

#: The algorithm line-up of the paper's Figures 2–5.
PAPER_ALGORITHMS: Tuple[str, ...] = ("vfk", "drp", "drp-cds", "gopt")

#: Parameters :func:`ExperimentConfig.sweep` accepts.
SWEEPABLE_PARAMETERS = ("num_channels", "num_items", "diversity", "skewness")


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: a sweep over a single parameter.

    Attributes
    ----------
    name:
        Identifier (e.g. ``"figure2"``).
    description:
        Human-readable summary printed in reports.
    sweep_parameter:
        One of :data:`SWEEPABLE_PARAMETERS`.
    sweep_values:
        Values the swept parameter takes.
    algorithms:
        Registry names of the algorithms to compare.
    num_items / num_channels / diversity / skewness:
        Fixed values for the non-swept parameters.
    bandwidth:
        Channel bandwidth ``b``.
    replications:
        Independent workloads per sweep value; results are averaged.
    base_seed:
        Replication ``r`` of sweep point ``v`` uses seed
        ``base_seed + 1000·index(v) + r`` so all algorithms see
        identical databases at each (point, replication).
    """

    name: str
    description: str
    sweep_parameter: str
    sweep_values: Tuple[float, ...]
    algorithms: Tuple[str, ...] = PAPER_ALGORITHMS
    num_items: int = FIXED_NUM_ITEMS
    num_channels: int = FIXED_NUM_CHANNELS
    diversity: float = FIXED_DIVERSITY
    skewness: float = FIXED_SKEWNESS
    bandwidth: float = DEFAULT_BANDWIDTH
    replications: int = 5
    base_seed: int = 20050608  # the ICDCS 2005 conference date

    def __post_init__(self) -> None:
        if self.sweep_parameter not in SWEEPABLE_PARAMETERS:
            raise InvalidDatabaseError(
                f"sweep_parameter must be one of {SWEEPABLE_PARAMETERS}, "
                f"got {self.sweep_parameter!r}"
            )
        if not self.sweep_values:
            raise InvalidDatabaseError("sweep_values cannot be empty")
        if not self.algorithms:
            raise InvalidDatabaseError("algorithms cannot be empty")
        if self.replications < 1:
            raise InvalidDatabaseError(
                f"replications must be >= 1, got {self.replications}"
            )

    def point_parameters(self, value: float) -> "ExperimentPoint":
        """Resolve the full parameter set at one sweep value."""
        params = {
            "num_items": self.num_items,
            "num_channels": self.num_channels,
            "diversity": self.diversity,
            "skewness": self.skewness,
        }
        if self.sweep_parameter in ("num_items", "num_channels"):
            params[self.sweep_parameter] = int(value)
        else:
            params[self.sweep_parameter] = float(value)
        return ExperimentPoint(
            num_items=int(params["num_items"]),
            num_channels=int(params["num_channels"]),
            diversity=float(params["diversity"]),
            skewness=float(params["skewness"]),
        )

    def seed_for(self, value_index: int, replication: int) -> int:
        """Deterministic workload seed for (sweep index, replication)."""
        return self.base_seed + 1000 * value_index + replication

    def scaled_down(self, *, replications: int = 2) -> "ExperimentConfig":
        """A cheaper copy for smoke tests and CI (fewer replications)."""
        return replace(self, replications=replications)


@dataclass(frozen=True)
class ExperimentPoint:
    """Fully resolved parameters of one sweep point."""

    num_items: int
    num_channels: int
    diversity: float
    skewness: float
