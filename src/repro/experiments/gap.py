"""Optimality-gap experiment: heuristics vs exact ground truth.

The paper can only compare against GOPT, a GA it concedes is itself a
suboptimum.  At small scale we can do better: enumerate every partition
(:mod:`repro.baselines.exact`) and measure the *true* gap of each
heuristic.  This experiment is the quantitative backing for the paper's
"the local optimal results ... are in fact very close to the global
optimal results" claim.

Extension beyond the paper (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Sequence, Tuple, Union

import repro.baselines  # noqa: F401  (registers allocators)
from repro.analysis.stats import Aggregate, aggregate
from repro.baselines.exact import brute_force_optimal
from repro.core.scheduler import make_allocator
from repro.exceptions import InvalidDatabaseError
from repro.experiments.parallel import map_ordered, resolve_workers
from repro.workloads.generator import WorkloadSpec, generate_database

__all__ = ["GapReport", "run_gap_experiment", "DEFAULT_GAP_ALGORITHMS"]

DEFAULT_GAP_ALGORITHMS: Tuple[str, ...] = (
    "vfk",
    "drp",
    "drp-cds",
    "gopt",
    "contiguous-dp",
)


@dataclass(frozen=True)
class GapReport:
    """True optimality gaps of one algorithm over many instances.

    ``gaps`` holds per-instance relative gaps ``(cost − opt) / opt``;
    ``exact_hits`` counts instances solved to optimality (gap < 1e-9).
    """

    algorithm: str
    gaps: Tuple[float, ...]
    exact_hits: int

    @property
    def summary(self) -> Aggregate:
        return aggregate(list(self.gaps))

    @property
    def worst(self) -> float:
        return max(self.gaps)

    @property
    def hit_rate(self) -> float:
        return self.exact_hits / len(self.gaps)


def _solve_gap_instance(
    seed: int,
    *,
    num_items: int,
    num_channels: int,
    skewness: float,
    diversity: float,
    algorithms: Tuple[str, ...],
) -> Dict[str, float]:
    """One instance: brute-force optimum plus every heuristic's cost.

    Module-level (and driven by a small ``seed`` argument) so the
    parallel path can pickle it to worker processes; the instance's
    database is re-derived from the seed on the worker side.
    """
    database = generate_database(
        WorkloadSpec(
            num_items=num_items,
            skewness=skewness,
            diversity=diversity,
            seed=seed,
        )
    )
    _, optimal = brute_force_optimal(database, num_channels)
    costs = {
        name: make_allocator(name).allocate(database, num_channels).cost
        for name in algorithms
    }
    costs["__optimal__"] = optimal
    return costs


def run_gap_experiment(
    *,
    num_items: int = 10,
    num_channels: int = 3,
    instances: int = 10,
    skewness: float = 0.8,
    diversity: float = 1.5,
    algorithms: Sequence[str] = DEFAULT_GAP_ALGORITHMS,
    base_seed: int = 777,
    workers: Union[int, str, None] = None,
) -> List[GapReport]:
    """Measure true optimality gaps on brute-forceable instances.

    Instance sizes are capped implicitly by the brute-force solver's
    partition budget; N around 10–12 with K 3–4 is the practical range.
    ``workers`` fans independent instances out over processes (same
    convention as :func:`~repro.experiments.runner.run_experiment`);
    results are merged in instance order, so the reports are identical
    for any worker count.
    """
    if instances < 1:
        raise InvalidDatabaseError(
            f"instances must be >= 1, got {instances}"
        )
    if not algorithms:
        raise InvalidDatabaseError("algorithms cannot be empty")
    gaps: Dict[str, List[float]] = {name: [] for name in algorithms}
    hits: Dict[str, int] = {name: 0 for name in algorithms}
    solve = partial(
        _solve_gap_instance,
        num_items=num_items,
        num_channels=num_channels,
        skewness=skewness,
        diversity=diversity,
        algorithms=tuple(algorithms),
    )
    per_instance = map_ordered(
        solve,
        range(base_seed, base_seed + instances),
        workers=resolve_workers(workers),
    )
    for costs in per_instance:
        optimal = costs["__optimal__"]
        for name in algorithms:
            gap = (costs[name] - optimal) / optimal
            gaps[name].append(gap)
            if gap < 1e-9:
                hits[name] += 1
    return [
        GapReport(
            algorithm=name,
            gaps=tuple(gaps[name]),
            exact_hits=hits[name],
        )
        for name in algorithms
    ]
