"""Sharded, resumable experiment fabric.

A sweep's cell grid is embarrassingly parallel, and
:mod:`repro.experiments.parallel` already fans it out over a process
pool — but one pool lives inside one OS process, so one machine crash
loses the whole sweep and one machine bounds the whole sweep.  This
module splits a sweep into **shards** that run as fully independent OS
processes (different terminals, different machines sharing a results
directory, a job array) and merge back into rows *identical* to a
serial run:

* :func:`compile_manifest` deterministically partitions the canonical
  cell grid of an :class:`~repro.experiments.config.ExperimentConfig`
  into ``num_shards`` contiguous slices and records the plan — config,
  config digest, shard → cell assignments, and the warm-start seed DAG
  edges — in a versioned ``manifest.json``.
* :func:`run_shard` executes one shard, streaming every completed cell
  into that shard's append-only store
  (:class:`~repro.experiments.store.ShardStore`) the moment it
  finishes.  Re-running a shard is **idempotent**: completed cells are
  skipped, a torn trailing record from a SIGKILL is dropped, and only
  the missing cells recompute.
* :func:`merge_shards` assembles the stores into one
  :class:`~repro.experiments.records.ExperimentResult` whose rows are
  identical to a serial :func:`~repro.experiments.runner.run_experiment`
  for **any** (shard layout × worker count × resume history) — the
  wall-clock ``elapsed`` aggregates excepted, matching the existing
  serial/parallel convention.

Warm starts across shard boundaries
-----------------------------------
The two-subwave seed DAG of
:func:`~repro.experiments.parallel._execute_cells_warm` gives every
cell a seed that depends only on the grid, never on scheduling.  The
fabric extends that across shard boundaries: a replication-0 cell
persists its compact assignment vector as a ``seed`` record, and a
shard that needs a seed produced elsewhere either **consumes** it from
the producing shard's store (a read-only scan — safe while the producer
is live) or **recomputes it cold**, replaying the producer's seed chain
deterministically in-process.  Both paths hand the consumer the exact
allocation the single-process scheduler would have, so merged rows do
not depend on which path ran.

Determinism requires one discipline: every shard must be compiled into
the same manifest (the config digest is checked at every step), and
resolution of seeds mirrors ``_execute_cells_warm.seed_for`` exactly —
replication > 0 consumes its own value's replication-0 result; a
replication-0 cell consumes the nearest smaller sweep value whose
problem shape matches.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.core.incremental import CompactAllocation
from repro.exceptions import ShardError
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    WorkloadMemo,
    _collect_outcome,
    _initialize_worker,
    _run_cell_in_worker,
    build_cell_grid,
    resolve_workers,
    run_cell,
)
from repro.experiments.records import ExperimentResult, cell_key, identity_key
from repro.experiments.store import ShardStore, store_chunk_path
from repro.obs.manifest import config_digest

__all__ = [
    "MANIFEST_SCHEMA",
    "KILL_AFTER_ENV_VAR",
    "ShardManifest",
    "ShardRunReport",
    "compile_manifest",
    "save_manifest",
    "load_manifest",
    "shard_cells",
    "spec_key",
    "run_shard",
    "merge_shards",
    "shard_status",
]

#: Schema tag of the manifest file; bumped on incompatible change.
MANIFEST_SCHEMA = "repro.shards.manifest/v1"

#: When set to an integer N, :func:`run_shard` SIGKILLs its own process
#: after streaming N cells — leaving a deliberately torn trailing record
#: so CI and tests can exercise the crash/resume path for real.
KILL_AFTER_ENV_VAR = "REPRO_SHARD_KILL_AFTER"

ProgressCallback = Callable[[str], None]


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _config_to_jsonable(config: ExperimentConfig) -> Dict[str, Any]:
    return {
        "name": config.name,
        "description": config.description,
        "sweep_parameter": config.sweep_parameter,
        "sweep_values": list(config.sweep_values),
        "algorithms": list(config.algorithms),
        "num_items": config.num_items,
        "num_channels": config.num_channels,
        "diversity": config.diversity,
        "skewness": config.skewness,
        "bandwidth": config.bandwidth,
        "replications": config.replications,
        "base_seed": config.base_seed,
    }


def _config_from_jsonable(payload: Dict[str, Any]) -> ExperimentConfig:
    try:
        return ExperimentConfig(
            name=payload["name"],
            description=payload["description"],
            sweep_parameter=payload["sweep_parameter"],
            sweep_values=tuple(payload["sweep_values"]),
            algorithms=tuple(payload["algorithms"]),
            num_items=int(payload["num_items"]),
            num_channels=int(payload["num_channels"]),
            diversity=float(payload["diversity"]),
            skewness=float(payload["skewness"]),
            bandwidth=float(payload["bandwidth"]),
            replications=int(payload["replications"]),
            base_seed=int(payload["base_seed"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardError(f"manifest config is malformed: {exc}") from exc


@dataclass(frozen=True)
class ShardManifest:
    """The compiled execution plan of one sharded sweep.

    ``assignments[s]`` lists the canonical grid indices shard ``s``
    owns; ``seed_edges`` lists the warm-start DAG as
    ``(consumer_grid_index, producer_grid_index)`` pairs (empty for
    cold sweeps) — the static, error-free projection of the runtime
    resolution, recorded so layouts can be audited without re-deriving
    the DAG.
    """

    config: ExperimentConfig
    config_sha256: str
    num_shards: int
    warm_start: bool
    assignments: Tuple[Tuple[int, ...], ...]
    seed_edges: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_cells(self) -> int:
        return sum(len(indices) for indices in self.assignments)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema": MANIFEST_SCHEMA,
            "config": _config_to_jsonable(self.config),
            "config_sha256": self.config_sha256,
            "num_shards": self.num_shards,
            "num_cells": self.num_cells,
            "warm_start": self.warm_start,
            "assignments": [list(indices) for indices in self.assignments],
            "seed_edges": [list(edge) for edge in self.seed_edges],
        }


def _shape_compatible(
    config: ExperimentConfig, producer_index: int, consumer_index: int
) -> bool:
    """Whether the producer value's allocation can seed the consumer.

    Mirrors ``_execute_cells_warm.shape_ok``: a replication-0 result of
    sweep value ``p`` has exactly ``point(p)``'s (K, N) shape, so shape
    compatibility is a pure function of the two sweep points.
    """
    producer = config.point_parameters(config.sweep_values[producer_index])
    consumer = config.point_parameters(config.sweep_values[consumer_index])
    return (
        producer.num_channels == consumer.num_channels
        and producer.num_items == consumer.num_items
    )


def _static_seed_edges(
    config: ExperimentConfig, grid: Sequence[CellSpec]
) -> Tuple[Tuple[int, int], ...]:
    """The seed DAG assuming every replication-0 cell succeeds.

    Runtime resolution (:func:`run_shard`) re-derives edges on the fly
    so it can skip over producers that errored; these static edges are
    the intended plan, written into the manifest for audit and for the
    shard-layouts oracle.
    """
    index_of = {
        (spec.value_index, spec.replication, spec.algorithm): index
        for index, spec in enumerate(grid)
    }
    edges: List[Tuple[int, int]] = []
    for index, spec in enumerate(grid):
        if spec.replication > 0:
            producer = index_of.get((spec.value_index, 0, spec.algorithm))
            if producer is not None:
                edges.append((index, producer))
            continue
        for value_index in range(spec.value_index - 1, -1, -1):
            if not _shape_compatible(config, value_index, spec.value_index):
                continue
            producer = index_of.get((value_index, 0, spec.algorithm))
            if producer is not None:
                edges.append((index, producer))
                break
    return tuple(edges)


def compile_manifest(
    config: ExperimentConfig,
    *,
    num_shards: int,
    warm_start: bool = False,
) -> ShardManifest:
    """Partition ``config``'s cell grid into ``num_shards`` shards.

    The partition is deterministic — contiguous slices of the canonical
    (value, replication, algorithm) grid order, shard ``s`` owning
    ``[s·N/M, (s+1)·N/M)`` — so compiling the same config twice yields
    byte-identical manifests, and contiguous slices keep each shard's
    workload-memo locality (the cells of one (value, replication) pair
    stay together).
    """
    grid = build_cell_grid(config)
    if num_shards < 1:
        raise ShardError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(grid):
        raise ShardError(
            f"num_shards={num_shards} exceeds the grid's {len(grid)} cells"
        )
    with obs.span(
        "shard.compile", cells=len(grid), shards=num_shards, warm=warm_start
    ):
        total = len(grid)
        assignments = tuple(
            tuple(
                range(
                    shard * total // num_shards,
                    (shard + 1) * total // num_shards,
                )
            )
            for shard in range(num_shards)
        )
        edges = _static_seed_edges(config, grid) if warm_start else ()
    return ShardManifest(
        config=config,
        config_sha256=config_digest(config),
        num_shards=num_shards,
        warm_start=warm_start,
        assignments=assignments,
        seed_edges=edges,
    )


def save_manifest(
    manifest: ShardManifest, path: Union[str, Path]
) -> None:
    """Write the manifest as indented, key-sorted JSON."""
    Path(path).write_text(
        json.dumps(manifest.to_jsonable(), indent=2, sort_keys=True) + "\n"
    )


def load_manifest(path: Union[str, Path]) -> ShardManifest:
    """Load and validate a manifest written by :func:`save_manifest`.

    Validation is strict — schema tag, config digest (recomputed from
    the embedded config and compared to the stored one, so a
    hand-edited config cannot silently drift from the digest the stores
    were stamped with), and the assignment partition (every grid index
    exactly once).
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ShardError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
        raise ShardError(
            f"{path}: expected manifest schema {MANIFEST_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    config = _config_from_jsonable(payload.get("config", {}))
    digest = config_digest(config)
    if digest != payload.get("config_sha256"):
        raise ShardError(
            f"{path}: config digest mismatch — manifest says "
            f"{payload.get('config_sha256')!r}, embedded config hashes to "
            f"{digest!r}"
        )
    assignments = tuple(
        tuple(int(index) for index in indices)
        for indices in payload.get("assignments", [])
    )
    grid_size = len(build_cell_grid(config))
    covered = sorted(index for indices in assignments for index in indices)
    if covered != list(range(grid_size)):
        raise ShardError(
            f"{path}: assignments do not partition the {grid_size}-cell "
            f"grid exactly"
        )
    num_shards = int(payload.get("num_shards", len(assignments)))
    if num_shards != len(assignments):
        raise ShardError(
            f"{path}: num_shards={num_shards} but "
            f"{len(assignments)} assignment lists"
        )
    return ShardManifest(
        config=config,
        config_sha256=digest,
        num_shards=num_shards,
        warm_start=bool(payload.get("warm_start", False)),
        assignments=assignments,
        seed_edges=tuple(
            (int(edge[0]), int(edge[1]))
            for edge in payload.get("seed_edges", [])
        ),
    )


def shard_cells(
    manifest: ShardManifest, shard_index: int
) -> List[CellSpec]:
    """The cell descriptors shard ``shard_index`` owns, in grid order."""
    if not 0 <= shard_index < manifest.num_shards:
        raise ShardError(
            f"shard index {shard_index} out of range for "
            f"{manifest.num_shards} shard(s)"
        )
    grid = build_cell_grid(manifest.config)
    return [grid[index] for index in manifest.assignments[shard_index]]


# ----------------------------------------------------------------------
# Cell / seed record (de)serialization
# ----------------------------------------------------------------------
def spec_key(config: ExperimentConfig, spec: CellSpec) -> str:
    """The stable identity key of one cell — the store's done-set key.

    Shared with the bench-history identity scheme via
    :func:`repro.experiments.records.cell_key`; includes the derived
    workload seed so a key ties the cell to the exact database it ran
    against.
    """
    return cell_key(
        algorithm=spec.algorithm,
        value=float(config.sweep_values[spec.value_index]),
        replication=spec.replication,
        seed=config.seed_for(spec.value_index, spec.replication),
    )


def _seed_key(value_index: int, algorithm: str) -> str:
    return "seed" + identity_key(
        (("value_index", value_index), ("algorithm", algorithm))
    )


def _outcome_to_payload(outcome: CellOutcome) -> Dict[str, Any]:
    # Only the scientific result and light provenance are persisted;
    # span/metric payloads were already adopted by the running process.
    return {
        "value_index": outcome.value_index,
        "replication": outcome.replication,
        "algorithm": outcome.algorithm,
        "cost": outcome.cost,
        "waiting_time": outcome.waiting_time,
        "elapsed_seconds": outcome.elapsed_seconds,
        "error": outcome.error,
        "worker_pid": outcome.worker_pid,
        "started_unix": outcome.started_unix,
        "finished_unix": outcome.finished_unix,
    }


def _outcome_from_payload(payload: Dict[str, Any]) -> CellOutcome:
    try:
        return CellOutcome(
            value_index=int(payload["value_index"]),
            replication=int(payload["replication"]),
            algorithm=payload["algorithm"],
            cost=payload.get("cost"),
            waiting_time=payload.get("waiting_time"),
            elapsed_seconds=payload.get("elapsed_seconds"),
            error=payload.get("error"),
            worker_pid=payload.get("worker_pid"),
            started_unix=payload.get("started_unix"),
            finished_unix=payload.get("finished_unix"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardError(f"malformed cell record payload: {exc}") from exc


def _seed_to_payload(seed: CompactAllocation) -> Dict[str, Any]:
    return {
        "item_ids": list(seed.item_ids),
        "assignment": list(seed.assignment),
        "num_channels": seed.num_channels,
        "cost": seed.cost,
    }


def _seed_from_payload(payload: Dict[str, Any]) -> CompactAllocation:
    try:
        return CompactAllocation(
            item_ids=tuple(payload["item_ids"]),
            assignment=tuple(int(c) for c in payload["assignment"]),
            num_channels=int(payload["num_channels"]),
            cost=float(payload["cost"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardError(f"malformed seed record payload: {exc}") from exc


# ----------------------------------------------------------------------
# Running one shard
# ----------------------------------------------------------------------
@dataclass
class ShardRunReport:
    """What one :func:`run_shard` invocation did."""

    shard_index: int
    total_cells: int
    already_complete: int
    computed: int
    cell_errors: int
    remaining: int
    seeds_imported: int = 0
    seed_recomputes: int = 0
    torn_records_dropped: int = 0
    stale_done_dropped: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


class _SeedResolver:
    """Runtime seed resolution mirroring ``_execute_cells_warm``.

    Resolution order for the replication-0 result of (value, algorithm):

    1. results harvested by this shard run,
    2. ``seed`` records in this shard's own store (a previous run),
    3. ``seed`` records in any other shard's store (read-only scan,
       cached — consuming across the shard boundary),
    4. deterministic cold recomputation, replaying the producer's own
       seed chain in-process.  Never written back as a *cell* (the cell
       belongs to its owning shard) but persisted as a ``seed`` record
       so the next resume skips the replay.

    All four paths yield the identical allocation — everything below a
    seed is a deterministic function of the config — so merged rows
    cannot depend on which path ran.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        manifest: ShardManifest,
        store: ShardStore,
        results_dir: Path,
        memo: WorkloadMemo,
    ) -> None:
        self.config = config
        self.manifest = manifest
        self.store = store
        self.results_dir = results_dir
        self.memo = memo
        self.imported = 0
        self.recomputed = 0
        self._cache: Dict[Tuple[int, str], Optional[CompactAllocation]] = {}
        self._foreign_seeds: Optional[Dict[str, Dict[str, Any]]] = None

    def harvest(self, spec: CellSpec, outcome: CellOutcome) -> CellOutcome:
        """Bank a just-finished replication-0 result, persisting it."""
        if outcome.seed_result is not None:
            self._cache[(spec.value_index, spec.algorithm)] = (
                outcome.seed_result
            )
            self.store.append_seed(
                _seed_key(spec.value_index, spec.algorithm),
                _seed_to_payload(outcome.seed_result),
            )
            outcome = replace(outcome, seed_result=None)
        elif spec.replication == 0 and outcome.error is not None:
            # An errored producer yields no seed; record that so the
            # downward scan skips it exactly like the in-process DAG.
            self._cache.setdefault((spec.value_index, spec.algorithm), None)
        return outcome

    def _foreign(self) -> Dict[str, Dict[str, Any]]:
        if self._foreign_seeds is None:
            merged: Dict[str, Dict[str, Any]] = {}
            for shard in range(self.manifest.num_shards):
                if shard == self.store.shard_index:
                    continue
                merged.update(ShardStore.scan(self.results_dir, shard).seeds)
            self._foreign_seeds = merged
        return self._foreign_seeds

    def _shape_ok(self, seed: CompactAllocation, value_index: int) -> bool:
        point = self.config.point_parameters(
            self.config.sweep_values[value_index]
        )
        return (
            seed.num_channels == point.num_channels
            and len(seed.item_ids) == point.num_items
        )

    def resolve_rep0(
        self, value_index: int, algorithm: str
    ) -> Optional[CompactAllocation]:
        """The replication-0 allocation of (value, algorithm), or None
        when that cell deterministically errors."""
        key = (value_index, algorithm)
        if key in self._cache:
            return self._cache[key]
        seed_key = _seed_key(value_index, algorithm)
        payload = self.store.seeds.get(seed_key)
        if payload is None:
            payload = self._foreign().get(seed_key)
        if payload is not None:
            seed = _seed_from_payload(payload)
            self._cache[key] = seed
            self.imported += 1
            return seed
        # Cold recomputation: replay the producer cell (and, through
        # seed_for, its own chain) exactly as the single-process
        # scheduler would have run it.
        warm = self.seed_for(CellSpec(value_index, 0, algorithm))
        outcome = run_cell(
            self.config,
            CellSpec(value_index, 0, algorithm),
            self.memo,
            warm_seed=warm,
            collect_seed=True,
        )
        self.recomputed += 1
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("shard.seed_recomputes").inc()
        seed = outcome.seed_result
        self._cache[key] = seed
        if seed is not None:
            self.store.append_seed(seed_key, _seed_to_payload(seed))
        return seed

    def seed_for(self, spec: CellSpec) -> Optional[CompactAllocation]:
        """The warm seed for ``spec`` — ``_execute_cells_warm.seed_for``
        with cross-shard resolution behind each lookup."""
        if spec.replication > 0:
            seed = self.resolve_rep0(spec.value_index, spec.algorithm)
            if seed is not None and self._shape_ok(seed, spec.value_index):
                return seed
        for value_index in range(spec.value_index - 1, -1, -1):
            if not _shape_compatible(
                self.config, value_index, spec.value_index
            ):
                continue
            seed = self.resolve_rep0(value_index, spec.algorithm)
            if seed is not None and self._shape_ok(seed, spec.value_index):
                return seed
        return None


class _ShardRecorder:
    """Streams finished cells into the store and drives the kill switch."""

    def __init__(
        self,
        config: ExperimentConfig,
        store: ShardStore,
        total: int,
        progress: Optional[ProgressCallback],
    ) -> None:
        self.config = config
        self.store = store
        self.total = total
        self.progress = progress
        self.computed = 0
        self.cell_errors = 0
        raw = os.environ.get(KILL_AFTER_ENV_VAR, "").strip()
        self.kill_after = int(raw) if raw else None

    def record(self, spec: CellSpec, outcome: CellOutcome) -> None:
        self.store.append_cell(
            spec_key(self.config, spec), _outcome_to_payload(outcome)
        )
        self.computed += 1
        if outcome.error is not None:
            self.cell_errors += 1
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("shard.cells").inc()
            if outcome.error is not None:
                registry.counter("shard.cell_errors").inc()
            shard = str(self.store.shard_index)
            registry.gauge("shard.heartbeat_unix", shard=shard).set(
                time.time()
            )
            registry.gauge("shard.progress", shard=shard).set(
                len(self.store.cells) / max(1, self.total)
            )
        if self.progress is not None:
            value = self.config.sweep_values[spec.value_index]
            status = (
                f"error: {outcome.error}"
                if outcome.error is not None
                else f"wait={outcome.waiting_time:.4f}"
            )
            self.progress(
                f"[shard {self.store.shard_index}] "
                f"{self.config.sweep_parameter}={value:g} "
                f"{spec.algorithm} rep {spec.replication}: {status} "
                f"({len(self.store.cells)}/{self.total})"
            )
        if self.kill_after is not None and self.computed >= self.kill_after:
            self._die()

    def _die(self) -> None:  # pragma: no cover — the process dies here
        # Leave a half-written record behind, exactly as a kill landing
        # mid-append would, so resume exercises the torn-record path.
        chunk = store_chunk_path(self.store.directory, self.store.shard_index)
        with chunk.open("ab") as handle:
            handle.write(b'{"crc": 0, "key": "[torn')
            handle.flush()
        os.kill(os.getpid(), signal.SIGKILL)


def run_shard(
    manifest: ShardManifest,
    shard_index: int,
    *,
    results_dir: Union[str, Path],
    workers: Union[int, str, None] = None,
    cell_timeout: Optional[float] = None,
    max_cells: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> ShardRunReport:
    """Execute one shard of the manifest, resumably.

    Opens (or resumes) the shard's store under ``results_dir``, skips
    every cell already recorded, and streams each newly finished cell
    as an append-only record the moment it completes — so a SIGKILL at
    any point costs at most the in-flight cell.  ``workers`` follows
    :func:`~repro.experiments.parallel.resolve_workers` (``None`` =
    in-process, ``"auto"`` = one per usable CPU); ``max_cells`` bounds
    how many cells this invocation computes, which is how tests and the
    shard-layouts oracle produce partial shards without killing a
    process.
    """
    config = manifest.config
    specs = shard_cells(manifest, shard_index)
    resolved = resolve_workers(workers)
    pool_workers = resolved if resolved is not None else 1
    started = time.time()
    store = ShardStore.open(
        results_dir, shard_index, config_sha256=manifest.config_sha256
    )
    try:
        registry = obs.get_metrics()
        if registry.enabled:
            if store.torn_dropped:
                registry.counter("shard.torn_records_dropped").inc(
                    store.torn_dropped
                )
            if store.stale_done_dropped:
                registry.counter("shard.stale_done_dropped").inc(
                    store.stale_done_dropped
                )
        pending = [
            spec for spec in specs if not store.is_done(spec_key(config, spec))
        ]
        already_complete = len(specs) - len(pending)
        if registry.enabled and already_complete:
            registry.counter("shard.cells_skipped").inc(already_complete)
        if max_cells is not None:
            pending = pending[:max_cells]
        with obs.span(
            "shard.run",
            shard=shard_index,
            cells=len(specs),
            pending=len(pending),
            resumed=already_complete > 0,
            workers=pool_workers,
            warm_start=manifest.warm_start,
        ):
            recorder = _ShardRecorder(config, store, len(specs), progress)
            if pending:
                if manifest.warm_start:
                    _run_shard_warm(
                        manifest,
                        store,
                        Path(results_dir),
                        pending,
                        recorder,
                        workers=pool_workers,
                        cell_timeout=cell_timeout,
                    )
                else:
                    _run_shard_cold(
                        config,
                        pending,
                        recorder,
                        workers=pool_workers,
                        cell_timeout=cell_timeout,
                    )
        resolver_imported = getattr(recorder, "seeds_imported", 0)
        resolver_recomputed = getattr(recorder, "seed_recomputes", 0)
        return ShardRunReport(
            shard_index=shard_index,
            total_cells=len(specs),
            already_complete=already_complete,
            computed=recorder.computed,
            cell_errors=recorder.cell_errors,
            remaining=len(specs) - len(store.cells.keys() & {
                spec_key(config, spec) for spec in specs
            }),
            seeds_imported=resolver_imported,
            seed_recomputes=resolver_recomputed,
            torn_records_dropped=store.torn_dropped,
            stale_done_dropped=store.stale_done_dropped,
            elapsed_seconds=time.time() - started,
        )
    finally:
        store.close()


def _run_shard_cold(
    config: ExperimentConfig,
    pending: List[CellSpec],
    recorder: _ShardRecorder,
    *,
    workers: int,
    cell_timeout: Optional[float],
) -> None:
    """Cold cells: independent, so stream in grid order as they land."""
    if workers <= 1 or len(pending) <= 1:
        memo = WorkloadMemo()
        for spec in pending:
            recorder.record(spec, run_cell(config, spec, memo))
        return
    from concurrent.futures import ProcessPoolExecutor

    tracer = obs.get_tracer()
    registry = obs.get_metrics()
    with ProcessPoolExecutor(
        max_workers=min(workers, len(pending)),
        initializer=_initialize_worker,
        initargs=(config, obs.worker_options()),
    ) as pool:
        submitted_unix = time.time()
        futures = [
            pool.submit(_run_cell_in_worker, spec) for spec in pending
        ]
        for spec, future in zip(pending, futures):
            recorder.record(
                spec,
                _collect_outcome(
                    spec,
                    future,
                    cell_timeout=cell_timeout,
                    tracer=tracer,
                    registry=registry,
                    submitted_unix=submitted_unix,
                ),
            )


def _run_shard_warm(
    manifest: ShardManifest,
    store: ShardStore,
    results_dir: Path,
    pending: List[CellSpec],
    recorder: _ShardRecorder,
    *,
    workers: int,
    cell_timeout: Optional[float],
) -> None:
    """Warm cells: the two-subwave scheduler restricted to this shard.

    Values execute in ascending order, replication 0 before the rest —
    the same wave structure as the single-process scheduler — with
    every seed lookup routed through :class:`_SeedResolver`, so
    off-shard producers are consumed from their stores or replayed
    cold.
    """
    config = manifest.config
    memo = WorkloadMemo()
    resolver = _SeedResolver(manifest.config, manifest, store, results_dir, memo)

    def harvest_and_record(spec: CellSpec, outcome: CellOutcome) -> None:
        recorder.record(spec, resolver.harvest(spec, outcome))

    by_value: Dict[int, List[CellSpec]] = {}
    for spec in pending:
        by_value.setdefault(spec.value_index, []).append(spec)

    if workers <= 1 or len(pending) <= 1:
        for value_index in sorted(by_value):
            members = by_value[value_index]
            for wave in (
                [s for s in members if s.replication == 0],
                [s for s in members if s.replication > 0],
            ):
                for spec in wave:
                    harvest_and_record(
                        spec,
                        run_cell(
                            config,
                            spec,
                            memo,
                            warm_seed=resolver.seed_for(spec),
                            collect_seed=spec.replication == 0,
                        ),
                    )
    else:
        from concurrent.futures import ProcessPoolExecutor

        tracer = obs.get_tracer()
        registry = obs.get_metrics()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_initialize_worker,
            initargs=(config, obs.worker_options()),
        ) as pool:
            for value_index in sorted(by_value):
                members = by_value[value_index]
                for wave in (
                    [s for s in members if s.replication == 0],
                    [s for s in members if s.replication > 0],
                ):
                    if not wave:
                        continue
                    submitted_unix = time.time()
                    futures = [
                        pool.submit(
                            _run_cell_in_worker,
                            spec,
                            resolver.seed_for(spec),
                            spec.replication == 0,
                        )
                        for spec in wave
                    ]
                    for spec, future in zip(wave, futures):
                        harvest_and_record(
                            spec,
                            _collect_outcome(
                                spec,
                                future,
                                cell_timeout=cell_timeout,
                                tracer=tracer,
                                registry=registry,
                                submitted_unix=submitted_unix,
                            ),
                        )
    recorder.seeds_imported = resolver.imported
    recorder.seed_recomputes = resolver.recomputed


# ----------------------------------------------------------------------
# Merging and status
# ----------------------------------------------------------------------
def merge_shards(
    manifest: ShardManifest,
    *,
    results_dir: Union[str, Path],
    progress: Optional[ProgressCallback] = None,
) -> ExperimentResult:
    """Assemble every shard's store into one :class:`ExperimentResult`.

    Outcomes are re-ordered by the canonical grid before aggregation
    and fed through the same
    :func:`~repro.experiments.runner.merge_outcomes` the serial and
    parallel engines use, so merged rows are identical to a serial run
    for any layout, worker count or resume history.  Missing cells
    raise :class:`~repro.exceptions.ShardError` listing which shards
    are incomplete — merge never silently aggregates a partial sweep.
    """
    config = manifest.config
    grid = build_cell_grid(config)
    with obs.span(
        "shard.merge", shards=manifest.num_shards, cells=len(grid)
    ) as span:
        collected: Dict[str, Dict[str, Any]] = {}
        for shard in range(manifest.num_shards):
            scan = ShardStore.scan(results_dir, shard)
            if scan.header is not None:
                stored = scan.header.get("config_sha256")
                if stored != manifest.config_sha256:
                    raise ShardError(
                        f"shard {shard} store was written for config "
                        f"digest {stored!r}, manifest expects "
                        f"{manifest.config_sha256!r}"
                    )
            collected.update(scan.cells)
        outcomes: List[CellOutcome] = []
        missing: Dict[int, int] = {}
        for shard, indices in enumerate(manifest.assignments):
            for index in indices:
                payload = collected.get(spec_key(config, grid[index]))
                if payload is None:
                    missing[shard] = missing.get(shard, 0) + 1
                else:
                    outcomes.append(_outcome_from_payload(payload))
        if missing:
            detail = ", ".join(
                f"shard {shard}: {count} cell(s)"
                for shard, count in sorted(missing.items())
            )
            raise ShardError(
                f"cannot merge an incomplete sweep — missing {detail}; "
                f"re-run `repro shard run` for the listed shard(s)"
            )
        outcomes.sort(
            key=lambda o: (
                o.value_index,
                o.replication,
                config.algorithms.index(o.algorithm),
            )
        )
        result = merge_outcomes_ordered(config, outcomes, progress)
        span.update(rows=len(result.rows), errors=len(result.errors))
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("shard.merges").inc()
    return result


def merge_outcomes_ordered(
    config: ExperimentConfig,
    outcomes: List[CellOutcome],
    progress: Optional[ProgressCallback] = None,
) -> ExperimentResult:
    """Grid-ordered outcomes → rows, via the engines' shared merge."""
    from repro.experiments.runner import merge_outcomes

    return merge_outcomes(config, outcomes, progress)


def shard_status(
    manifest: ShardManifest, *, results_dir: Union[str, Path]
) -> List[Dict[str, Any]]:
    """Per-shard completion summary (read-only; safe on live stores)."""
    config = manifest.config
    grid = build_cell_grid(config)
    status: List[Dict[str, Any]] = []
    for shard, indices in enumerate(manifest.assignments):
        scan = ShardStore.scan(results_dir, shard)
        keys = {spec_key(config, grid[index]) for index in indices}
        done = len(keys & scan.cells.keys())
        errors = sum(
            1
            for key in keys
            if key in scan.cells and scan.cells[key].get("error") is not None
        )
        status.append(
            {
                "shard": shard,
                "cells": len(indices),
                "done": done,
                "missing": len(indices) - done,
                "errors": errors,
                "seeds": len(scan.seeds),
                "torn_trailing_record": bool(scan.torn_dropped),
            }
        )
    return status
