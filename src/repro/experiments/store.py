"""Chunked on-disk result store for sharded experiment runs.

One :class:`ShardStore` holds the results of one shard of a sweep as an
**append-only JSONL chunk** (``shard-<i>.jsonl``) plus a sidecar
**done-set** (``shard-<i>.done``, one completed cell key per line).
The design goal is crash-tolerant idempotence: a shard process can be
SIGKILLed at any byte and a re-run recomputes exactly the missing
cells, nothing else.

Record format — one JSON object per line::

    {"kind": "cell"|"seed"|"header", "key": "...", "payload": {...},
     "crc": <crc32 of the canonical payload JSON>}

* ``cell`` records carry one completed
  :class:`~repro.experiments.parallel.CellOutcome` (success or recorded
  error), keyed by :func:`repro.experiments.records.cell_key`.
* ``seed`` records persist the compact warm-start assignment vector
  (:class:`~repro.core.incremental.CompactAllocation` fields) a
  replication-0 cell produced, so *another shard* can consume the seed
  across the shard boundary instead of recomputing the chain cold.
* The ``header`` record pins the store schema and the config digest —
  resuming a shard against a store written for a different experiment
  fails loudly instead of silently merging apples into oranges.

Crash semantics, in write order per cell: seed record (replication-0
warm sweeps only) → cell record → done-set line.  Each line is a single
buffered write followed by a flush, so a kill leaves at most one
**torn trailing record** — a final line that is incomplete, unparsable
or fails its CRC.  :meth:`ShardStore.open` detects it, truncates it
away and counts it in ``torn_dropped``; the cell simply reruns.  A
done-set entry whose record is missing (stale — e.g. the record was the
torn one) is dropped and repaired the same way.  Any *mid-file*
corruption is not a crash artifact and raises
:class:`~repro.exceptions.ShardError`.

The store never rewrites history: completed records are immutable, and
the merge layer (:func:`repro.experiments.shards.merge_shards`) orders
outcomes by the canonical sweep grid, never by file order — which is
what keeps merged rows identical for any (layout × workers × resume
history).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.exceptions import ShardError

__all__ = [
    "STORE_SCHEMA",
    "ShardStore",
    "StoreScan",
    "store_chunk_path",
    "store_done_path",
]

#: Schema tag written into every store's header record.
STORE_SCHEMA = "repro.shards.store/v1"

_KINDS = ("header", "cell", "seed")


def store_chunk_path(directory: Union[str, Path], shard_index: int) -> Path:
    """``<directory>/shard-<i>.jsonl`` — the append-only record chunk."""
    return Path(directory) / f"shard-{shard_index}.jsonl"


def store_done_path(directory: Union[str, Path], shard_index: int) -> Path:
    """``<directory>/shard-<i>.done`` — the sidecar done-set."""
    return Path(directory) / f"shard-{shard_index}.done"


def _payload_crc(payload: Dict[str, Any]) -> int:
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return zlib.crc32(canonical)


def _encode_record(kind: str, key: str, payload: Dict[str, Any]) -> bytes:
    record = {
        "kind": kind,
        "key": key,
        "payload": payload,
        "crc": _payload_crc(payload),
    }
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def _decode_record(line: bytes) -> Optional[Tuple[str, str, Dict[str, Any]]]:
    """Parse one record line; ``None`` marks a torn/invalid record."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    kind = record.get("kind")
    key = record.get("key")
    payload = record.get("payload")
    crc = record.get("crc")
    if kind not in _KINDS or not isinstance(key, str):
        return None
    if not isinstance(payload, dict) or not isinstance(crc, int):
        return None
    if _payload_crc(payload) != crc:
        return None
    return kind, key, payload


@dataclass
class StoreScan:
    """Everything a read of one shard chunk yields.

    ``cells`` and ``seeds`` map record key → payload; ``header`` is the
    header payload when present.  ``torn_dropped`` counts trailing
    records dropped as kill artifacts, ``valid_bytes`` is the offset of
    the end of the last valid record (the truncation point for repair).
    """

    cells: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    seeds: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    header: Optional[Dict[str, Any]] = None
    torn_dropped: int = 0
    valid_bytes: int = 0


def scan_chunk(path: Union[str, Path]) -> StoreScan:
    """Read one record chunk, tolerating a torn trailing record.

    Read-only — never modifies the file, so any process may scan any
    shard's chunk (cross-shard seed lookups do exactly that) while the
    owning shard is live.  A torn *trailing* record is dropped and
    counted; an invalid record anywhere else raises
    :class:`~repro.exceptions.ShardError`, because an append-only log
    can only be damaged mid-file by something other than a kill.
    """
    path = Path(path)
    scan = StoreScan()
    if not path.exists():
        return scan
    data = path.read_bytes()
    offset = 0
    lines = data.split(b"\n")
    # split() yields a final "" element iff the data ends with a
    # newline; a non-empty final element is an unterminated write.
    for index, line in enumerate(lines):
        is_last = index == len(lines) - 1
        if line == b"":
            continue
        terminated = not is_last
        decoded = _decode_record(line) if terminated else None
        if decoded is None:
            remaining = any(part != b"" for part in lines[index + 1:])
            if remaining:
                raise ShardError(
                    f"{path}: corrupt record at byte {offset} is not the "
                    f"trailing record — refusing to resume from a "
                    f"damaged store"
                )
            scan.torn_dropped += 1
            break
        kind, key, payload = decoded
        if kind == "header":
            scan.header = payload
        elif kind == "cell":
            scan.cells[key] = payload
        else:
            scan.seeds[key] = payload
        offset += len(line) + 1
    scan.valid_bytes = offset
    return scan


def _read_done(path: Path) -> List[str]:
    if not path.exists():
        return []
    entries: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(line)
    return entries


class ShardStore:
    """Append-only result store of one shard, open for writing.

    Use :meth:`open` (which replays, repairs and positions the chunk)
    rather than the constructor.  The store is also a context manager::

        with ShardStore.open(directory, shard_index=2,
                             config_sha256=digest) as store:
            if not store.is_done(key):
                store.append_cell(key, payload)
    """

    def __init__(
        self,
        directory: Union[str, Path],
        shard_index: int,
        *,
        cells: Dict[str, Dict[str, Any]],
        seeds: Dict[str, Dict[str, Any]],
        torn_dropped: int,
        stale_done_dropped: int,
    ) -> None:
        self.directory = Path(directory)
        self.shard_index = shard_index
        self.cells = cells
        self.seeds = seeds
        self.torn_dropped = torn_dropped
        self.stale_done_dropped = stale_done_dropped
        self._chunk: Optional[IO[bytes]] = None
        self._done: Optional[IO[bytes]] = None

    # ------------------------------------------------------------------
    # Opening / repair
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: Union[str, Path],
        shard_index: int,
        *,
        config_sha256: Optional[str] = None,
    ) -> "ShardStore":
        """Open (creating or resuming) shard ``shard_index``'s store.

        Resume sequence: scan the chunk, truncate a torn trailing
        record, validate the header against ``config_sha256`` when
        given, drop stale done-set entries (done lines without a valid
        cell record) and repair missing ones (valid cell records whose
        done line was lost to the kill — the record is authoritative).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        chunk_path = store_chunk_path(directory, shard_index)
        done_path = store_done_path(directory, shard_index)

        scan = scan_chunk(chunk_path)
        if scan.header is not None and config_sha256 is not None:
            stored = scan.header.get("config_sha256")
            if stored != config_sha256:
                raise ShardError(
                    f"{chunk_path}: store was written for config digest "
                    f"{stored!r}, expected {config_sha256!r} — refusing "
                    f"to mix experiments in one store"
                )
        if scan.header is not None and scan.header.get("schema") != STORE_SCHEMA:
            raise ShardError(
                f"{chunk_path}: store schema "
                f"{scan.header.get('schema')!r} != {STORE_SCHEMA!r}"
            )
        if scan.torn_dropped and chunk_path.exists():
            with chunk_path.open("r+b") as handle:
                handle.truncate(scan.valid_bytes)

        done_entries = _read_done(done_path)
        stale = [key for key in done_entries if key not in scan.cells]
        repaired = sorted(set(scan.cells) - set(done_entries))
        if stale or repaired:
            # Rewrite the sidecar to agree with the authoritative chunk.
            tmp_path = done_path.with_suffix(".done.tmp")
            tmp_path.write_text(
                "".join(f"{key}\n" for key in sorted(scan.cells)),
                encoding="utf-8",
            )
            os.replace(tmp_path, done_path)

        store = cls(
            directory,
            shard_index,
            cells=scan.cells,
            seeds=scan.seeds,
            torn_dropped=scan.torn_dropped,
            stale_done_dropped=len(stale),
        )
        store._chunk = chunk_path.open("ab")
        store._done = done_path.open("ab")
        if scan.header is None:
            store._append_record(
                "header",
                f"shard-{shard_index}",
                {
                    "schema": STORE_SCHEMA,
                    "shard_index": shard_index,
                    "config_sha256": config_sha256,
                },
            )
        return store

    @classmethod
    def scan(
        cls, directory: Union[str, Path], shard_index: int
    ) -> StoreScan:
        """Read-only scan of a shard's chunk (no repair, no locks).

        Safe on a live store: used for cross-shard seed lookups and by
        the merge step.
        """
        return scan_chunk(store_chunk_path(directory, shard_index))

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append_record(
        self, kind: str, key: str, payload: Dict[str, Any]
    ) -> None:
        if self._chunk is None:
            raise ShardError("store is closed")
        self._chunk.write(_encode_record(kind, key, payload))
        self._chunk.flush()

    def append_cell(self, key: str, payload: Dict[str, Any]) -> bool:
        """Record one completed cell; returns False if already present.

        The record line lands (and is flushed) before the done-set
        entry, so every reachable state is recoverable: record+done =
        complete, record only = complete (done repaired on open),
        torn record = dropped and rerun.
        """
        if key in self.cells:
            return False
        self._append_record("cell", key, payload)
        self.cells[key] = payload
        if self._done is None:
            raise ShardError("store is closed")
        self._done.write(f"{key}\n".encode("utf-8"))
        self._done.flush()
        return True

    def append_seed(self, key: str, payload: Dict[str, Any]) -> bool:
        """Persist one warm-start seed vector; False if already stored."""
        if key in self.seeds:
            return False
        self._append_record("seed", key, payload)
        self.seeds[key] = payload
        return True

    def is_done(self, key: str) -> bool:
        return key in self.cells

    def completed_keys(self) -> List[str]:
        """Keys of every validly recorded cell, insertion order."""
        return list(self.cells)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        for handle in (self._chunk, self._done):
            if handle is not None:
                handle.close()
        self._chunk = None
        self._done = None

    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False
