"""Result records of experiment runs, with CSV/JSON export."""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.analysis.tables import format_table

__all__ = [
    "CELL_IDENTITY_FIELDS",
    "identity_key",
    "cell_key",
    "MeasurementRow",
    "CellError",
    "ExperimentResult",
]

#: The fields that identify one sweep cell, in canonical key order.
CELL_IDENTITY_FIELDS: Tuple[str, ...] = (
    "algorithm",
    "value",
    "replication",
    "seed",
)


def identity_key(pairs: Iterable[Tuple[str, object]]) -> str:
    """Render ``(field, value)`` pairs as a stable ``[f=v,...]`` key.

    The one identity-rendering used across the repo: the shard store's
    done-set and record keys (:func:`cell_key`) and the bench-history
    row keys (:mod:`repro.obs.bench`) all produce their identities
    through this function, so the two subsystems can never drift into
    incompatible keying schemes.  ``None`` values are omitted; an empty
    pair list renders as the empty string.
    """
    parts = [
        f"{field}={value}" for field, value in pairs if value is not None
    ]
    return "[" + ",".join(parts) + "]" if parts else ""


def cell_key(
    *, algorithm: str, value: float, replication: int, seed: int
) -> str:
    """The stable identity key of one (algorithm, sweep value,
    replication) cell, seed included.

    Used as the record key and done-set entry of the shard store
    (:mod:`repro.experiments.store`): two runs of the same
    :class:`~repro.experiments.config.ExperimentConfig` produce the
    same keys regardless of shard layout, worker count or resume
    history, which is what makes shard resume idempotent.  The sweep
    value is rendered via ``repr(float(...))`` so the key round-trips
    the exact float.
    """
    return identity_key(
        zip(
            CELL_IDENTITY_FIELDS,
            (algorithm, repr(float(value)), int(replication), int(seed)),
        )
    )


@dataclass(frozen=True)
class MeasurementRow:
    """Aggregated measurements of one (sweep value, algorithm) cell.

    All aggregates are over the experiment's replications.
    """

    sweep_value: float
    algorithm: str
    mean_cost: float
    std_cost: float
    mean_waiting_time: float
    std_waiting_time: float
    mean_elapsed_seconds: float
    std_elapsed_seconds: float
    replications: int


@dataclass(frozen=True)
class CellError:
    """One (sweep value, replication, algorithm) cell that failed.

    Recorded instead of aborting the sweep: the aggregates of the
    affected (sweep value, algorithm) row are computed over the
    replications that did succeed (``MeasurementRow.replications``
    reflects that count), and a row with zero successful replications is
    omitted entirely.
    """

    sweep_value: float
    algorithm: str
    replication: int
    message: str


@dataclass
class ExperimentResult:
    """All measurements of one experiment, plus provenance.

    ``rows`` holds one :class:`MeasurementRow` per (sweep value,
    algorithm) pair, in sweep order.  ``errors`` records every cell that
    failed (empty for a fully successful run).
    """

    name: str
    description: str
    sweep_parameter: str
    algorithms: Tuple[str, ...]
    rows: List[MeasurementRow] = field(default_factory=list)
    errors: List[CellError] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def sweep_values(self) -> List[float]:
        seen: List[float] = []
        for row in self.rows:
            if row.sweep_value not in seen:
                seen.append(row.sweep_value)
        return seen

    def cell(self, sweep_value: float, algorithm: str) -> MeasurementRow:
        for row in self.rows:
            if row.sweep_value == sweep_value and row.algorithm == algorithm:
                return row
        raise KeyError(
            f"no measurement for value={sweep_value!r}, "
            f"algorithm={algorithm!r}"
        )

    def series(
        self, algorithm: str, metric: str = "mean_waiting_time"
    ) -> List[Tuple[float, float]]:
        """The (sweep value, metric) series of one algorithm."""
        return [
            (row.sweep_value, getattr(row, metric))
            for row in self.rows
            if row.algorithm == algorithm
        ]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self, metric: str = "mean_waiting_time", *, precision: int = 4) -> str:
        """Paper-figure-style table: sweep values × algorithms."""
        headers = [self.sweep_parameter] + list(self.algorithms)
        table_rows: List[List[Union[str, float]]] = []
        for value in self.sweep_values():
            row: List[Union[str, float]] = [
                int(value) if float(value).is_integer() else value
            ]
            for algorithm in self.algorithms:
                row.append(getattr(self.cell(value, algorithm), metric))
            table_rows.append(row)
        return format_table(
            headers,
            table_rows,
            title=f"{self.name}: {self.description} [{metric}]",
            precision=precision,
        )

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "sweep_value",
                    "algorithm",
                    "mean_cost",
                    "std_cost",
                    "mean_waiting_time",
                    "std_waiting_time",
                    "mean_elapsed_seconds",
                    "std_elapsed_seconds",
                    "replications",
                ]
            )
            for row in self.rows:
                writer.writerow(
                    [
                        row.sweep_value,
                        row.algorithm,
                        row.mean_cost,
                        row.std_cost,
                        row.mean_waiting_time,
                        row.std_waiting_time,
                        row.mean_elapsed_seconds,
                        row.std_elapsed_seconds,
                        row.replications,
                    ]
                )

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        payload = {
            "name": self.name,
            "description": self.description,
            "sweep_parameter": self.sweep_parameter,
            "algorithms": list(self.algorithms),
            "rows": [asdict(row) for row in self.rows],
            "errors": [asdict(error) for error in self.errors],
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            description=payload["description"],
            sweep_parameter=payload["sweep_parameter"],
            algorithms=tuple(payload["algorithms"]),
            rows=[MeasurementRow(**row) for row in payload["rows"]],
            errors=[
                CellError(**error) for error in payload.get("errors", [])
            ],
        )
