"""Sweep executor: run an :class:`ExperimentConfig` to completion.

For every sweep value and replication the runner synthesises one
workload (same seed for every algorithm, so all algorithms face
identical databases), times each allocator, and aggregates cost, waiting
time and execution time across replications.

Execution has two interchangeable engines:

* the **serial** loop below (``workers=None``, the default), and
* the **parallel fan-out** of :mod:`repro.experiments.parallel`
  (``workers=N`` or the ``REPRO_WORKERS`` environment variable), which
  distributes (sweep value, replication, algorithm) cells over a
  process pool.

Both produce their measurements as :class:`CellOutcome` records and
share one merge path, so for any worker count the aggregated rows are
bitwise-identical to a serial run (wall-clock ``elapsed`` aggregates
excepted — those measure whatever machine state the run saw).

Importing :mod:`repro.baselines` as a side effect registers every
algorithm name the configs refer to.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

import os

import repro.baselines  # noqa: F401  (registers baseline allocators)
from repro import obs
from repro.analysis.stats import aggregate
from repro.core.cost import average_waiting_time
from repro.core.scheduler import make_allocator
from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import (
    CellOutcome,
    build_cell_grid,
    execute_cells,
    resolve_workers,
)
from repro.experiments.records import CellError, ExperimentResult, MeasurementRow
from repro.workloads.generator import WorkloadSpec, generate_database

__all__ = ["run_experiment", "merge_outcomes"]

ProgressCallback = Callable[[str], None]


def _serial_outcomes(config: ExperimentConfig) -> List[CellOutcome]:
    """The classic in-process loop, emitting one outcome per cell.

    Allocators are stateless between ``allocate`` calls, so one instance
    per algorithm is constructed up front and reused across every
    (sweep value, replication) — the parallel path keeps per-cell
    construction instead, because its workers are isolated processes.
    """
    allocators = {
        algorithm: make_allocator(algorithm) for algorithm in config.algorithms
    }
    outcomes: List[CellOutcome] = []
    for value_index, value in enumerate(config.sweep_values):
        point = config.point_parameters(value)
        for replication in range(config.replications):
            spec = WorkloadSpec(
                num_items=point.num_items,
                skewness=point.skewness,
                diversity=point.diversity,
                seed=config.seed_for(value_index, replication),
            )
            database = generate_database(spec)
            for algorithm in config.algorithms:
                with obs.span(
                    "experiment.cell",
                    value_index=value_index,
                    replication=replication,
                    algorithm=algorithm,
                    worker_pid=os.getpid(),
                ) as span:
                    outcome = allocators[algorithm].allocate(
                        database, point.num_channels
                    )
                    span.update(
                        cost=outcome.cost,
                        compute_seconds=outcome.elapsed_seconds,
                    )
                outcomes.append(
                    CellOutcome(
                        value_index=value_index,
                        replication=replication,
                        algorithm=algorithm,
                        cost=outcome.cost,
                        waiting_time=average_waiting_time(
                            outcome.allocation, bandwidth=config.bandwidth
                        ),
                        elapsed_seconds=outcome.elapsed_seconds,
                    )
                )
    return outcomes


def merge_outcomes(
    config: ExperimentConfig,
    outcomes: List[CellOutcome],
    progress: Optional[ProgressCallback] = None,
) -> ExperimentResult:
    """Aggregate per-cell outcomes into rows, in canonical grid order.

    Shared by the serial and parallel engines *and* the shard merge
    (:func:`repro.experiments.shards.merge_shards`) — aggregation order
    (and therefore floating-point rounding) depends only on the grid,
    never on completion order, which is what makes ``workers=N`` and
    any shard layout reproduce the serial rows exactly.
    """
    result = ExperimentResult(
        name=config.name,
        description=config.description,
        sweep_parameter=config.sweep_parameter,
        algorithms=config.algorithms,
    )
    by_cell = {}
    for outcome in outcomes:
        key = (outcome.value_index, outcome.algorithm)
        by_cell.setdefault(key, []).append(outcome)
    for value_index, value in enumerate(config.sweep_values):
        progress_parts: List[str] = []
        for algorithm in config.algorithms:
            cell_outcomes = sorted(
                by_cell.get((value_index, algorithm), []),
                key=lambda outcome: outcome.replication,
            )
            good = [o for o in cell_outcomes if o.error is None]
            for failed in cell_outcomes:
                if failed.error is not None:
                    result.errors.append(
                        CellError(
                            sweep_value=float(value),
                            algorithm=algorithm,
                            replication=failed.replication,
                            message=failed.error,
                        )
                    )
            if not good:
                continue
            cost_agg = aggregate([o.cost for o in good])
            wait_agg = aggregate([o.waiting_time for o in good])
            time_agg = aggregate([o.elapsed_seconds for o in good])
            result.rows.append(
                MeasurementRow(
                    sweep_value=float(value),
                    algorithm=algorithm,
                    mean_cost=cost_agg.mean,
                    std_cost=cost_agg.std,
                    mean_waiting_time=wait_agg.mean,
                    std_waiting_time=wait_agg.std,
                    mean_elapsed_seconds=time_agg.mean,
                    std_elapsed_seconds=time_agg.std,
                    replications=len(good),
                )
            )
            progress_parts.append(f"{algorithm}={wait_agg.mean:.4f}")
        if progress is not None:
            progress(
                f"[{config.name}] {config.sweep_parameter}={value}: "
                + ", ".join(progress_parts)
            )
    return result


def run_experiment(
    config: ExperimentConfig,
    *,
    progress: Optional[ProgressCallback] = None,
    workers: Union[int, str, None] = None,
    cell_timeout: Optional[float] = None,
    warm_start: bool = False,
) -> ExperimentResult:
    """Execute every (sweep value × replication × algorithm) cell.

    Parameters
    ----------
    config:
        The experiment definition.
    progress:
        Optional callback invoked with a status line per sweep point
        (the CLI passes ``print``).
    workers:
        ``None`` (default) runs serially unless the ``REPRO_WORKERS``
        environment variable is set; an integer fans the sweep's cells
        out over that many worker processes (``1`` exercises the
        fan-out machinery in-process); ``"auto"`` uses one worker per
        CPU.  Results are bitwise-identical to the serial path for any
        worker count.
    cell_timeout:
        With ``workers`` >= 2: maximum seconds to wait for any single
        cell's result; a slower cell is recorded as a
        :class:`~repro.experiments.records.CellError` instead of
        stalling the sweep forever.
    warm_start:
        Seed warm-startable allocators (DRP-CDS) with the nearest
        finished sweep cell's allocation — replication 0 of each sweep
        value warm-starts from the previous value, further replications
        from replication 0 (see
        :func:`repro.experiments.parallel.execute_cells`).  Always runs
        through the fan-out engine (``workers=None`` behaves as
        ``workers=1``) so serial and parallel warm sweeps share one
        scheduler and stay identical across worker counts.  Costs may
        differ slightly from a cold sweep: CDS is a local search and a
        different (guarded) seed can converge to a different optimum.

    Returns
    -------
    ExperimentResult
        One aggregated row per (sweep value, algorithm); failed cells
        are listed in ``result.errors``.
    """
    resolved = resolve_workers(workers)
    if warm_start and resolved is None:
        resolved = 1  # one warm implementation: always the fan-out engine
    grid_size = (
        len(config.sweep_values) * config.replications * len(config.algorithms)
    )
    with obs.span(
        "experiment.run",
        experiment=config.name,
        sweep_parameter=config.sweep_parameter,
        cells=grid_size,
        workers=resolved if resolved is not None else 0,
        warm_start=warm_start,
    ) as span:
        if resolved is None:
            outcomes = _serial_outcomes(config)
        else:
            outcomes = execute_cells(
                config,
                build_cell_grid(config),
                workers=resolved,
                cell_timeout=cell_timeout,
                warm_start=warm_start,
            )
        result = merge_outcomes(config, outcomes, progress)
        span.update(rows=len(result.rows), errors=len(result.errors))
        registry = obs.get_metrics()
        if registry.enabled:
            registry.counter("experiment.runs").inc()
            registry.counter("experiment.rows").inc(len(result.rows))
            registry.counter("experiment.errors").inc(len(result.errors))
    return result
