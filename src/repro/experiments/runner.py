"""Sweep executor: run an :class:`ExperimentConfig` to completion.

For every sweep value and replication the runner synthesises one
workload (same seed for every algorithm, so all algorithms face
identical databases), times each allocator, and aggregates cost, waiting
time and execution time across replications.

Importing :mod:`repro.baselines` as a side effect registers every
algorithm name the configs refer to.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import repro.baselines  # noqa: F401  (registers baseline allocators)
from repro.analysis.stats import aggregate
from repro.core.cost import average_waiting_time
from repro.core.scheduler import make_allocator
from repro.experiments.config import ExperimentConfig
from repro.experiments.records import ExperimentResult, MeasurementRow
from repro.workloads.generator import WorkloadSpec, generate_database

__all__ = ["run_experiment"]

ProgressCallback = Callable[[str], None]


def run_experiment(
    config: ExperimentConfig,
    *,
    progress: Optional[ProgressCallback] = None,
) -> ExperimentResult:
    """Execute every (sweep value × replication × algorithm) cell.

    Parameters
    ----------
    config:
        The experiment definition.
    progress:
        Optional callback invoked with a status line per sweep point
        (the CLI passes ``print``).

    Returns
    -------
    ExperimentResult
        One aggregated row per (sweep value, algorithm).
    """
    result = ExperimentResult(
        name=config.name,
        description=config.description,
        sweep_parameter=config.sweep_parameter,
        algorithms=config.algorithms,
    )
    for value_index, value in enumerate(config.sweep_values):
        point = config.point_parameters(value)
        costs: Dict[str, List[float]] = {a: [] for a in config.algorithms}
        waits: Dict[str, List[float]] = {a: [] for a in config.algorithms}
        times: Dict[str, List[float]] = {a: [] for a in config.algorithms}
        for replication in range(config.replications):
            spec = WorkloadSpec(
                num_items=point.num_items,
                skewness=point.skewness,
                diversity=point.diversity,
                seed=config.seed_for(value_index, replication),
            )
            database = generate_database(spec)
            for algorithm in config.algorithms:
                allocator = make_allocator(algorithm)
                outcome = allocator.allocate(database, point.num_channels)
                costs[algorithm].append(outcome.cost)
                waits[algorithm].append(
                    average_waiting_time(
                        outcome.allocation, bandwidth=config.bandwidth
                    )
                )
                times[algorithm].append(outcome.elapsed_seconds)
        for algorithm in config.algorithms:
            cost_agg = aggregate(costs[algorithm])
            wait_agg = aggregate(waits[algorithm])
            time_agg = aggregate(times[algorithm])
            result.rows.append(
                MeasurementRow(
                    sweep_value=float(value),
                    algorithm=algorithm,
                    mean_cost=cost_agg.mean,
                    std_cost=cost_agg.std,
                    mean_waiting_time=wait_agg.mean,
                    std_waiting_time=wait_agg.std,
                    mean_elapsed_seconds=time_agg.mean,
                    std_elapsed_seconds=time_agg.std,
                    replications=config.replications,
                )
            )
        if progress is not None:
            progress(
                f"[{config.name}] {config.sweep_parameter}={value}: "
                + ", ".join(
                    f"{algorithm}={aggregate(waits[algorithm]).mean:.4f}"
                    for algorithm in config.algorithms
                )
            )
    return result
