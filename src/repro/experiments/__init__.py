"""Experiment harness: configs, runner and per-figure definitions."""

from repro.experiments.config import (
    ExperimentConfig,
    ExperimentPoint,
    FIXED_DIVERSITY,
    FIXED_NUM_CHANNELS,
    FIXED_NUM_ITEMS,
    FIXED_SKEWNESS,
    PAPER_ALGORITHMS,
    SWEEPABLE_PARAMETERS,
    TABLE5_CHANNELS,
    TABLE5_DIVERSITY,
    TABLE5_ITEMS,
    TABLE5_SKEWNESS,
)
from repro.experiments.figures import (
    FIGURE_METRICS,
    FIGURES,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure_config,
)
from repro.experiments.gap import (
    DEFAULT_GAP_ALGORITHMS,
    GapReport,
    run_gap_experiment,
)
from repro.experiments.records import ExperimentResult, MeasurementRow
from repro.experiments.report import generate_report
from repro.experiments.runner import run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentPoint",
    "ExperimentResult",
    "MeasurementRow",
    "run_experiment",
    "generate_report",
    "GapReport",
    "run_gap_experiment",
    "DEFAULT_GAP_ALGORITHMS",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_config",
    "FIGURES",
    "FIGURE_METRICS",
    "PAPER_ALGORITHMS",
    "SWEEPABLE_PARAMETERS",
    "TABLE5_CHANNELS",
    "TABLE5_ITEMS",
    "TABLE5_DIVERSITY",
    "TABLE5_SKEWNESS",
    "FIXED_NUM_ITEMS",
    "FIXED_NUM_CHANNELS",
    "FIXED_DIVERSITY",
    "FIXED_SKEWNESS",
]
