"""Per-figure experiment definitions — the paper's evaluation, indexed.

Each ``figureN()`` returns the :class:`ExperimentConfig` that regenerates
the data of the paper's Figure N:

* Figure 2 — channel number K vs average waiting time,
* Figure 3 — number of broadcast items N vs average waiting time,
* Figure 4 — diversity Φ vs average waiting time,
* Figure 5 — skewness θ vs average waiting time,
* Figure 6 — channel number K vs execution time,
* Figure 7 — number of broadcast items N vs execution time.

Figures 6 and 7 reuse the sweeps of Figures 2 and 3; only the reported
metric differs (``mean_elapsed_seconds`` instead of
``mean_waiting_time``), which :data:`FIGURE_METRICS` records.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.experiments.config import (
    ExperimentConfig,
    TABLE5_CHANNELS,
    TABLE5_DIVERSITY,
    TABLE5_ITEMS,
    TABLE5_SKEWNESS,
)
from repro.experiments.records import ExperimentResult

__all__ = [
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "FIGURES",
    "FIGURE_METRICS",
    "figure_config",
    "run_figure",
]


def figure2() -> ExperimentConfig:
    """Figure 2: K = 4..10 vs average waiting time."""
    return ExperimentConfig(
        name="figure2",
        description="channel number vs average waiting time",
        sweep_parameter="num_channels",
        sweep_values=tuple(float(k) for k in TABLE5_CHANNELS),
    )


def figure3() -> ExperimentConfig:
    """Figure 3: N = 60..180 vs average waiting time."""
    return ExperimentConfig(
        name="figure3",
        description="number of broadcast items vs average waiting time",
        sweep_parameter="num_items",
        sweep_values=tuple(float(n) for n in TABLE5_ITEMS),
    )


def figure4() -> ExperimentConfig:
    """Figure 4: Φ = 0..3 vs average waiting time."""
    return ExperimentConfig(
        name="figure4",
        description="diversity vs average waiting time",
        sweep_parameter="diversity",
        sweep_values=TABLE5_DIVERSITY,
    )


def figure5() -> ExperimentConfig:
    """Figure 5: θ = 0.4..1.6 vs average waiting time."""
    return ExperimentConfig(
        name="figure5",
        description="skewness vs average waiting time",
        sweep_parameter="skewness",
        sweep_values=TABLE5_SKEWNESS,
    )


def figure6() -> ExperimentConfig:
    """Figure 6: K = 4..10 vs execution time.

    The complexity comparison needs only DRP-CDS and GOPT (the paper
    plots exactly these two).
    """
    return ExperimentConfig(
        name="figure6",
        description="channel number vs execution time",
        sweep_parameter="num_channels",
        sweep_values=tuple(float(k) for k in TABLE5_CHANNELS),
        algorithms=("drp-cds", "gopt"),
        replications=3,
    )


def figure7() -> ExperimentConfig:
    """Figure 7: N = 60..180 vs execution time."""
    return ExperimentConfig(
        name="figure7",
        description="number of broadcast items vs execution time",
        sweep_parameter="num_items",
        sweep_values=tuple(float(n) for n in TABLE5_ITEMS),
        algorithms=("drp-cds", "gopt"),
        replications=3,
    )


#: Figure id -> config factory.
FIGURES: Dict[str, Callable[[], ExperimentConfig]] = {
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
}

#: Figure id -> the metric the paper's y-axis plots.
FIGURE_METRICS: Dict[str, str] = {
    "figure2": "mean_waiting_time",
    "figure3": "mean_waiting_time",
    "figure4": "mean_waiting_time",
    "figure5": "mean_waiting_time",
    "figure6": "mean_elapsed_seconds",
    "figure7": "mean_elapsed_seconds",
}


def figure_config(figure_id: str) -> ExperimentConfig:
    """Look up a figure's config by id (``"figure2"`` .. ``"figure7"``)."""
    try:
        factory = FIGURES[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {figure_id!r}; known: {known}") from None
    return factory()


def run_figure(
    figure_id: str,
    *,
    replications: Optional[int] = None,
    workers: Union[int, str, None] = None,
    cell_timeout: Optional[float] = None,
    warm_start: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Tuple[ExperimentConfig, ExperimentResult]:
    """Regenerate one figure's data, optionally scaled down or fanned out.

    Convenience wrapper used by the CLI and the report generator:
    resolves the figure's config, applies a replication override, and
    runs it through :func:`~repro.experiments.runner.run_experiment`
    with the requested worker count (serial and parallel runs produce
    identical rows) and warm-start setting.  Returns
    ``(config, result)``.
    """
    from repro.experiments.runner import run_experiment

    config = figure_config(figure_id)
    if replications is not None:
        config = config.scaled_down(replications=replications)
    result = run_experiment(
        config,
        progress=progress,
        workers=workers,
        cell_timeout=cell_timeout,
        warm_start=warm_start,
    )
    return config, result
