"""Nested tracing spans with JSONL and Chrome ``trace_event`` export.

A :class:`Tracer` records :class:`SpanRecord` entries — name, wall-clock
start, duration, key/value attributes, optional ``tracemalloc`` peak —
organised as a tree via ``parent_id``.  Two exporters are provided:

* **JSONL** (:meth:`Tracer.export_jsonl`) — one JSON object per line,
  the stable machine-readable format (schema in
  ``docs/observability.md``, checker in ``tests/trace_schema.py``);
* **Chrome trace_event** (:meth:`Tracer.export_chrome`) — the
  ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_ JSON
  format, for visual inspection of sweeps and allocator phases.

The module is dependency-free and built for a *disabled-by-default*
regime: production code talks to the module-level tracer through
:func:`repro.obs.span`, which normally resolves to :data:`NULL_TRACER` —
a no-op whose spans cost one attribute lookup and an empty context
manager (the overhead budget is enforced by
``benchmarks/bench_obs_overhead.py`` and ``tests/test_obs_integration``).

Cross-process use: worker processes run their own :class:`Tracer`,
serialise finished spans with :meth:`Tracer.drain_payload`, ship them
over the existing result pipe, and the parent re-homes them with
:meth:`Tracer.adopt` — span ids are reassigned so merged traces stay
consistent, and merge order is the caller's (deterministic, grid-order
in the experiment runner).
"""

from __future__ import annotations

import itertools
import json
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "jsonl_to_chrome",
    "JSONL_SCHEMA_VERSION",
]

#: Version stamp written into every JSONL trace line.
JSONL_SCHEMA_VERSION = 1


@dataclass
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted span name (``"drp.allocate"``, ``"experiment.cell"``...;
        naming scheme in ``docs/observability.md``).
    span_id / parent_id:
        Tree structure; ``parent_id`` is ``None`` for roots.
    pid:
        Process id the span was recorded in (worker spans keep theirs).
    start_unix:
        Wall-clock start (``time.time()`` seconds) — the shared timebase
        that lets spans from different processes interleave correctly.
    duration:
        Span length in seconds (``time.perf_counter`` delta).
    attributes:
        Key/value payload; values must be JSON-serialisable.
    peak_memory:
        ``tracemalloc`` peak traced bytes observed during the span, or
        ``None`` when memory tracking was off.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    pid: int
    start_unix: float
    duration: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    peak_memory: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL representation of this span."""
        return {
            "type": "span",
            "schema": JSONL_SCHEMA_VERSION,
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "ts": self.start_unix,
            "dur": self.duration,
            "attrs": self.attributes,
            "peak_mem": self.peak_memory,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            pid=payload.get("pid", 0),
            start_unix=payload["ts"],
            duration=payload["dur"],
            attributes=dict(payload.get("attrs", {})),
            peak_memory=payload.get("peak_mem"),
        )


class _NullSpan:
    """The span of a disabled tracer: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attributes: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: hands out the shared no-op span.

    ``span()`` does no allocation beyond the caller's keyword dict, and
    the returned context manager's enter/exit are empty methods — the
    cheapest "off" a ``with obs.span(...)`` call site can get without
    an explicit enabled-flag branch at every site.
    """

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **attributes: Any) -> None:
        pass

    @property
    def records(self) -> List[SpanRecord]:
        return []

    @property
    def active_span_names(self) -> List[str]:
        return []

    def adopt(
        self,
        payload: Sequence[Dict[str, Any]],
        *,
        root_attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        pass

    def drain_payload(self) -> List[Dict[str, Any]]:
        return []


#: The process-wide disabled tracer (a singleton; also the default).
NULL_TRACER = NullTracer()


class _Span:
    """Context manager recording one span on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "_start_unix",
        "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attributes = attributes

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = next(tracer._ids)
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        tracer._name_stack.append(self.name)
        if tracer.track_memory:
            tracer._memory_enter()
        self._start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the (still open) span."""
        self.attributes[key] = value

    def update(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        tracer._stack.pop()
        tracer._name_stack.pop()
        peak = tracer._memory_exit() if tracer.track_memory else None
        if exc_type is not None:
            self.attributes["error"] = f"{exc_type.__name__}: {exc}"
        tracer._records.append(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                pid=tracer.pid,
                start_unix=self._start_unix,
                duration=duration,
                attributes=self.attributes,
                peak_memory=peak,
            )
        )
        return False


class Tracer:
    """Collecting tracer: nested spans, instants, export, merging.

    Parameters
    ----------
    track_memory:
        When true, every span also records the ``tracemalloc`` peak
        observed while it was open (starts ``tracemalloc`` on first
        use).  Costs roughly an order of magnitude in allocator-heavy
        code — strictly opt-in.
    """

    enabled = True

    def __init__(self, *, track_memory: bool = False) -> None:
        self._records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._name_stack: List[str] = []
        self._ids = itertools.count(1)
        self.pid = os.getpid()
        self.track_memory = track_memory
        self._memory_started = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _Span:
        """Open a span; use as ``with tracer.span("x", k=v) as sp:``."""
        return _Span(self, name, attributes)

    def instant(self, name: str, **attributes: Any) -> None:
        """Record a zero-duration marker (e.g. a timeout decision)."""
        self._records.append(
            SpanRecord(
                name=name,
                span_id=next(self._ids),
                parent_id=self._stack[-1] if self._stack else None,
                pid=self.pid,
                start_unix=time.time(),
                duration=0.0,
                attributes=dict(attributes),
            )
        )

    def _memory_enter(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._memory_started = True
        if hasattr(tracemalloc, "reset_peak"):
            tracemalloc.reset_peak()

    def _memory_exit(self) -> Optional[int]:
        if not tracemalloc.is_tracing():  # pragma: no cover - defensive
            return None
        return tracemalloc.get_traced_memory()[1]

    # ------------------------------------------------------------------
    # Access / merging
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[SpanRecord]:
        """The finished spans, in completion order (children first)."""
        return list(self._records)

    @property
    def active_span_names(self) -> List[str]:
        """Names of the currently open spans, outermost first.

        Read by the sampling profiler (from its own thread) to
        attribute each sample to the innermost open span; a torn read
        during a push/pop merely shifts that sample by one span.
        """
        return self._name_stack

    def find(self, name: str) -> List[SpanRecord]:
        """All finished spans with the given name."""
        return [record for record in self._records if record.name == name]

    def drain_payload(self) -> List[Dict[str, Any]]:
        """Remove and return all finished spans as plain dicts.

        The worker-side half of cross-process merging: the payload is
        small, picklable and JSON-ready, and draining keeps a worker's
        memory bounded over arbitrarily long sweeps.
        """
        payload = [record.to_dict() for record in self._records]
        self._records.clear()
        return payload

    def adopt(
        self,
        payload: Sequence[Dict[str, Any]],
        *,
        root_attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Merge spans exported by another tracer (typically a worker).

        Span ids are reassigned from this tracer's counter (preserving
        the payload's internal parent/child links), so merged traces
        never collide with local ids.  Roots of the payload become
        children of the currently open span, and ``root_attributes``
        (e.g. the queue-wait measured by the parent) are folded into
        them.
        """
        local_parent = self._stack[-1] if self._stack else None
        records = [SpanRecord.from_dict(item) for item in payload]
        # Two passes: spans are recorded on *exit*, so a child appears
        # before its parent in the payload — all ids must be remapped
        # before any parent link can be resolved.
        id_map: Dict[int, int] = {
            record.span_id: next(self._ids) for record in records
        }
        for record in records:
            record.span_id = id_map[record.span_id]
            if record.parent_id is not None and record.parent_id in id_map:
                record.parent_id = id_map[record.parent_id]
            else:
                record.parent_id = local_parent
                if root_attributes:
                    record.attributes.update(root_attributes)
            self._records.append(record)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> None:
        """Write one JSON object per line (schema 1; see docs)."""
        with Path(path).open("w") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def export_chrome(self, path: Union[str, Path]) -> None:
        """Write the Chrome ``trace_event`` JSON for chrome://tracing."""
        events = chrome_trace_events(self._records)
        Path(path).write_text(json.dumps(events, indent=1))


def chrome_trace_events(
    records: Sequence[SpanRecord],
) -> Dict[str, Any]:
    """Convert span records to a Chrome ``trace_event`` document.

    Spans become ``"X"`` (complete) events; zero-duration records become
    ``"i"`` (instant) events; every distinct pid gets a process-name
    metadata event.  Timestamps are microseconds relative to the
    earliest span, which keeps the viewer's time axis readable.
    """
    if records:
        epoch = min(record.start_unix for record in records)
    else:
        epoch = 0.0
    events: List[Dict[str, Any]] = []
    seen_pids: Dict[int, None] = {}
    for record in records:
        if record.pid not in seen_pids:
            seen_pids[record.pid] = None
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": record.pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {record.pid}"},
                }
            )
        args = dict(record.attributes)
        if record.peak_memory is not None:
            args["peak_memory_bytes"] = record.peak_memory
        event: Dict[str, Any] = {
            "name": record.name,
            "pid": record.pid,
            "tid": 0,
            "ts": (record.start_unix - epoch) * 1e6,
            "args": args,
        }
        if record.duration > 0.0:
            event["ph"] = "X"
            event["dur"] = record.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "p"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def jsonl_to_chrome(
    jsonl_path: Union[str, Path], chrome_path: Union[str, Path]
) -> int:
    """Convert an exported JSONL trace to Chrome ``trace_event`` JSON.

    Returns the number of spans converted.  This is what makes the
    JSONL format "Chrome-trace-convertible": every line carries the
    name/ts/dur/pid/attrs the viewer needs.
    """
    records: List[SpanRecord] = []
    with Path(jsonl_path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "span":
                records.append(SpanRecord.from_dict(payload))
    document = chrome_trace_events(records)
    Path(chrome_path).write_text(json.dumps(document, indent=1))
    return len(records)
