"""Metrics exposition: OpenMetrics text rendering and live endpoints.

Two ways to look at a :class:`~repro.obs.metrics.MetricsRegistry` while
the run that feeds it is still going:

* :func:`render_openmetrics` turns a registry snapshot into the
  Prometheus / OpenMetrics text format — counters become ``*_total``,
  histograms get cumulative ``le`` buckets plus ``_sum``/``_count``
  (and ``_min``/``_max`` gauges from the schema-2 extremes);
  :class:`MetricsServer` serves that text from a background
  ``http.server`` thread at ``/metrics`` (plus a ``/health`` probe),
  enabled by ``--metrics-port`` / ``REPRO_METRICS_PORT``.
* :class:`MetricsStream` is the scrape-free fallback: a background
  thread that periodically appends a windowed JSON summary (via
  :class:`~repro.obs.timeseries.MetricWindows`) to a JSONL file,
  enabled by ``--metrics-stream`` / ``REPRO_METRICS_STREAM``.

Both read the registry through a snapshot callable, never touching
instrument internals — the registry's structure lock makes concurrent
snapshotting safe against the recording thread.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.timeseries import MetricWindows

__all__ = [
    "render_openmetrics",
    "sanitize_metric_name",
    "MetricsServer",
    "MetricsStream",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_PATTERN = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name to a legal Prometheus metric name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _split_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split a rendered registry key into (name, [(label, value), ...])."""
    match = _KEY_PATTERN.match(key)
    if match is None:  # pragma: no cover - registry keys always match
        return key, []
    name = match.group("name")
    labels_text = match.group("labels")
    labels: List[Tuple[str, str]] = []
    if labels_text:
        for part in labels_text.split(","):
            label, _, value = part.partition("=")
            labels.append((label, value))
    return name, labels


def _render_labels(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(
            sanitize_metric_name(label),
            str(value).replace("\\", "\\\\").replace('"', '\\"'),
        )
        for label, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # pragma: no cover - registries never store bools
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def render_openmetrics(
    snapshot: Dict[str, Any],
    *,
    prefix: str = "repro_",
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """Render a metrics snapshot as OpenMetrics text.

    ``snapshot`` is the dict produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (schema 1 or 2).
    Counters are exposed as ``<prefix><name>_total``, gauges verbatim,
    histograms as cumulative ``le`` bucket series plus ``_sum`` and
    ``_count`` (and, when the snapshot carries them, ``_min``/``_max``
    gauges).  Registry labels (``name{label=value}``) become Prometheus
    labels.  ``extra_gauges`` injects process-level values (uptime,
    heartbeat ages) without touching the registry.  The output ends
    with the OpenMetrics ``# EOF`` terminator.
    """
    lines: List[str] = []

    def emit_meta(name: str, metric_type: str) -> None:
        lines.append(f"# TYPE {name} {metric_type}")

    # Group rendered keys by sanitized metric name so each TYPE header
    # appears once ahead of all its labelled series.
    def grouped(section: Dict[str, Any]) -> Dict[str, List[Tuple[str, Any]]]:
        groups: Dict[str, List[Tuple[str, Any]]] = {}
        for key in sorted(section):
            raw_name, labels = _split_key(key)
            name = prefix + sanitize_metric_name(raw_name)
            groups.setdefault(name, []).append((_render_labels(labels), section[key]))
        return groups

    for name, series in grouped(snapshot.get("counters", {})).items():
        emit_meta(f"{name}_total", "counter")
        for labels, value in series:
            lines.append(f"{name}_total{labels} {_format_value(value)}")

    for name, series in grouped(snapshot.get("gauges", {})).items():
        emit_meta(name, "gauge")
        for labels, value in series:
            if value is None:
                continue
            lines.append(f"{name}{labels} {_format_value(value)}")

    for name, series in grouped(snapshot.get("histograms", {})).items():
        emit_meta(name, "histogram")
        extremes: List[Tuple[str, Optional[float], Optional[float]]] = []
        for labels, payload in series:
            cumulative = 0
            label_body = labels[1:-1] if labels else ""
            for bound, count in zip(payload["buckets"], payload["counts"]):
                cumulative += count
                le = _format_value(float(bound))
                inner = f'{label_body},le="{le}"' if label_body else f'le="{le}"'
                lines.append(
                    f"{name}_bucket{{{inner}}} {_format_value(cumulative)}"
                )
            cumulative += payload["counts"][-1]
            inner = f'{label_body},le="+Inf"' if label_body else 'le="+Inf"'
            lines.append(f"{name}_bucket{{{inner}}} {_format_value(cumulative)}")
            lines.append(f"{name}_sum{labels} {_format_value(payload['sum'])}")
            lines.append(f"{name}_count{labels} {_format_value(payload['count'])}")
            extremes.append((labels, payload.get("min"), payload.get("max")))
        # min/max ride along as gauges (schema 2 snapshots only).
        minima = [(labels, low) for labels, low, _ in extremes if low is not None]
        maxima = [(labels, high) for labels, _, high in extremes if high is not None]
        if minima:
            emit_meta(f"{name}_min", "gauge")
            for labels, low in minima:
                lines.append(f"{name}_min{labels} {_format_value(low)}")
        if maxima:
            emit_meta(f"{name}_max", "gauge")
            for labels, high in maxima:
                lines.append(f"{name}_max{labels} {_format_value(high)}")

    if extra_gauges:
        for raw_name in sorted(extra_gauges):
            name = prefix + sanitize_metric_name(raw_name)
            emit_meta(name, "gauge")
            lines.append(f"{name} {_format_value(extra_gauges[raw_name])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` (OpenMetrics text) and ``/health`` (JSON)."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.server.render().encode("utf-8")  # type: ignore[attr-defined]
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/health":
            payload = self.server.health()  # type: ignore[attr-defined]
            self._reply(
                200, json.dumps(payload).encode("utf-8"), "application/json"
            )
        else:
            self._reply(404, b"not found\n", "text/plain")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes must not spam the run's stderr.
        pass


class _MetricsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    render: Callable[[], str]
    health: Callable[[], Dict[str, Any]]


class MetricsServer:
    """Background ``/metrics`` endpoint over a snapshot callable.

    Binds ``host:port`` (port 0 picks an ephemeral port — read
    :attr:`port` after :meth:`start`), serves scrapes from daemon
    threads, and never touches the registry beyond calling the
    ``snapshot_fn`` the caller provided.  ``stop()`` shuts the listener
    down; it is also safe to just let the daemon threads die with the
    process.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, Any]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro_",
    ) -> None:
        self._snapshot_fn = snapshot_fn
        self.host = host
        self.requested_port = int(port)
        self.prefix = prefix
        self._httpd: Optional[_MetricsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.time()
        self._scrapes = 0
        self._scrape_lock = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (differs from requested when that was 0)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def scrapes(self) -> int:
        return self._scrapes

    def _render(self) -> str:
        with self._scrape_lock:
            self._scrapes += 1
            scrapes = self._scrapes
        return render_openmetrics(
            self._snapshot_fn(),
            prefix=self.prefix,
            extra_gauges={
                "exposition.uptime_seconds": time.time() - self._started_at,
                "exposition.scrapes": scrapes,
            },
        )

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_at,
            "scrapes": self._scrapes,
        }

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        httpd = _MetricsHTTPServer(
            (self.host, self.requested_port), _MetricsHandler
        )
        httpd.render = self._render
        httpd.health = self._health
        self._httpd = httpd
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._httpd = None
        self._thread = None


class MetricsStream:
    """Scrape-free fallback: periodic windowed JSONL summaries.

    A daemon thread samples the snapshot callable every ``interval``
    seconds, folds it into a :class:`MetricWindows`, and appends one
    JSON line (``{"ts": ..., "tick": ..., "window_seconds": ...,
    "counters": ..., "gauges": ...}``) to ``path``.  ``stop()`` writes
    one final line so short runs always leave at least one record.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Dict[str, Any]],
        path: Union[str, Path],
        *,
        interval: float = 1.0,
        window: float = 60.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._snapshot_fn = snapshot_fn
        self.path = Path(path)
        self.interval = float(interval)
        self._windows = MetricWindows(window=window)
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._tick = 0
        self._write_lock = threading.Lock()

    @property
    def ticks(self) -> int:
        return self._tick

    def _write_tick(self) -> None:
        now = time.monotonic()
        self._windows.sample(self._snapshot_fn(), now)
        summary = self._windows.summary(now)
        self._tick += 1
        record = {
            "type": "metrics_window",
            "schema": 1,
            "ts": time.time(),
            "tick": self._tick,
        }
        record.update(summary)
        line = json.dumps(record, sort_keys=True)
        with self._write_lock:
            with self.path.open("a") as handle:
                handle.write(line + "\n")

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self._write_tick()
            except Exception:  # pragma: no cover - a tick must never kill a run
                pass

    def start(self) -> "MetricsStream":
        if self._thread is not None:
            return self
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-stream", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop_event.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        # Final summary so even sub-interval runs leave a record.
        try:
            self._write_tick()
        except OSError:  # pragma: no cover - final flush is best-effort
            pass
