"""Statistical sampling profiler with folded-stack output.

A daemon thread wakes every ``interval`` seconds (default 5 ms),
captures the target thread's Python stack via
``sys._current_frames()``, and counts identical stacks.  The result
exports as *collapsed/folded* stacks —

    main;run_experiment;cds_refine;_best_move 412

— one line per distinct stack with its sample count, directly
consumable by Brendan Gregg's ``flamegraph.pl`` and by
`speedscope <https://speedscope.app>`_ (import as "collapsed stacks").

When the active :class:`~repro.obs.tracing.Tracer` is a collecting one,
each sample is also attributed to the innermost open span (the tracer's
active-span name stack), so ``SamplingProfiler.span_samples`` answers
"which span was the program inside?" without any per-span timers —
cross-checking the measured span durations against wall-clock samples.

Sampling is wait-free for the profiled thread: the profiled code never
takes a lock or runs a callback; all cost is in the sampler thread
(one ``sys._current_frames()`` call plus a dict update per tick).
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = ["SamplingProfiler"]


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    # co_qualname (3.11+) distinguishes methods; fall back to co_name.
    name = getattr(code, "co_qualname", None) or code.co_name
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{name} ({filename}:{code.co_firstlineno})"


class SamplingProfiler:
    """Sample one thread's stack periodically; export folded stacks.

    Parameters
    ----------
    interval:
        Seconds between samples (default 0.005 — ~200 Hz, low enough
        that the GIL hand-off cost stays invisible on solver workloads).
    target_thread_id:
        The thread to sample; defaults to the *calling* thread (attach
        from the main thread before starting the workload).
    tracer:
        When given and collecting, each sample also increments a
        per-open-span counter keyed by the tracer's innermost active
        span name (see :attr:`span_samples`).
    """

    def __init__(
        self,
        *,
        interval: float = 0.005,
        target_thread_id: Optional[int] = None,
        tracer: Any = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.target_thread_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        self._tracer = tracer if getattr(tracer, "enabled", False) else None
        self._counts: Dict[Tuple[str, ...], int] = {}
        self._span_samples: Dict[str, int] = {}
        self._samples = 0
        self._missed = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample_once(self) -> None:
        frames = sys._current_frames()
        frame = frames.get(self.target_thread_id)
        if frame is None:
            self._missed += 1
            return
        stack: List[str] = []
        while frame is not None:
            stack.append(_frame_label(frame))
            frame = frame.f_back
        stack.reverse()
        key = tuple(stack)
        self._counts[key] = self._counts.get(key, 0) + 1
        self._samples += 1
        if self._tracer is not None:
            # Torn reads of the name stack are fine: a sample lands on
            # whichever span was (approximately) open at that instant.
            name_stack = getattr(self._tracer, "active_span_names", None)
            if name_stack:
                self._span_samples[name_stack[-1]] = (
                    self._span_samples.get(name_stack[-1], 0) + 1
                )
            else:
                self._span_samples["<no-span>"] = (
                    self._span_samples.get("<no-span>", 0) + 1
                )

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self._sample_once()
            except Exception:  # pragma: no cover - sampling must never kill a run
                self._missed += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop_event.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._stopped_at = time.monotonic()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Samples captured (excludes missed ticks)."""
        return self._samples

    @property
    def missed(self) -> int:
        """Ticks where the target thread had no frame (e.g. exited)."""
        return self._missed

    @property
    def duration(self) -> Optional[float]:
        if self._started_at is None:
            return None
        end = self._stopped_at if self._stopped_at is not None else time.monotonic()
        return end - self._started_at

    @property
    def span_samples(self) -> Dict[str, int]:
        """Samples attributed to each innermost-open span name."""
        return dict(self._span_samples)

    def folded_stacks(self) -> List[Tuple[str, int]]:
        """``(stack, count)`` pairs, stack frames joined with ``;``.

        Sorted by count descending then stack text, so the hottest
        stack is first and the output is deterministic.
        """
        return sorted(
            ((";".join(stack), count) for stack, count in self._counts.items()),
            key=lambda item: (-item[1], item[0]),
        )

    def render_folded(self) -> str:
        """The collapsed-stack text: ``frame;frame;frame count`` lines."""
        lines = [f"{stack} {count}" for stack, count in self.folded_stacks()]
        return "\n".join(lines) + ("\n" if lines else "")

    def export_folded(self, path: Union[str, Path]) -> int:
        """Write the folded stacks; returns the sample count.

        A ``# span:`` comment block at the top records the per-span
        attribution (comment lines are ignored by flamegraph.pl and
        speedscope's collapsed-stack importer).
        """
        header_lines = [
            f"# repro sampling profile: {self._samples} samples"
            f" @ {self.interval * 1000:.1f}ms interval"
        ]
        if self.duration is not None:
            header_lines.append(f"# duration_seconds: {self.duration:.3f}")
        for name in sorted(self._span_samples):
            header_lines.append(f"# span: {name} {self._span_samples[name]}")
        Path(path).write_text(
            "\n".join(header_lines) + "\n" + self.render_folded()
        )
        return self._samples
