"""Per-run manifests: the provenance record next to experiment outputs.

A manifest answers "what exactly produced this file?" — seeds, a stable
hash of the experiment configuration, the git revision, backend
resolution (scalar vs numpy), CPU count and the ``REPRO_*`` environment
— so a trace, metrics snapshot, CSV or report can be tied back to the
code and parameters that generated it.  Everything is computed with the
standard library; the git revision degrades to ``None`` outside a git
checkout.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "config_digest",
    "git_revision",
    "build_manifest",
    "write_manifest",
]

#: Version stamp written into every manifest.
MANIFEST_SCHEMA_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of configs to JSON-stable structures."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def config_digest(config: Any) -> str:
    """A stable SHA-256 over the canonical JSON form of ``config``.

    Dataclasses (e.g. :class:`~repro.experiments.config.ExperimentConfig`)
    are converted via ``asdict``; two runs with identical parameters get
    identical digests regardless of field order.
    """
    canonical = json.dumps(_jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Per-process ``git_revision`` cache, keyed by the resolved cwd.  The
#: revision cannot change under a running process in any supported
#: workflow, and shelling out to git once per sweep cell (every
#: ``build_manifest`` under ``--trace``) is measurable at small cells.
_GIT_REVISION_CACHE: Dict[Optional[str], Optional[str]] = {}


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current ``git rev-parse HEAD``, or ``None`` when unavailable.

    Cached per-process (per ``cwd``): repeated manifest builds — one
    per sweep cell under ``--trace`` — reuse the first lookup instead
    of forking a git subprocess each time.
    """
    cache_key = str(Path(cwd).resolve()) if cwd is not None else None
    if cache_key in _GIT_REVISION_CACHE:
        return _GIT_REVISION_CACHE[cache_key]
    revision = _git_revision_uncached(cwd)
    _GIT_REVISION_CACHE[cache_key] = revision
    return revision


def _git_revision_uncached(
    cwd: Optional[Union[str, Path]] = None,
) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy baked into the image
        return None
    return numpy.__version__


def build_manifest(
    *,
    command: Optional[str] = None,
    config: Any = None,
    seed: Optional[int] = None,
    outputs: Optional[Dict[str, str]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dict for one run.

    Parameters
    ----------
    command:
        Human-readable description of the invocation (typically the CLI
        argv joined back together).
    config:
        The experiment/workload configuration; recorded verbatim
        (JSON-converted) together with its :func:`config_digest`.
    seed:
        The primary workload seed, when the run has a single one.
    outputs:
        Logical name -> path of the files written alongside this
        manifest (trace, metrics, csv, ...).
    extra:
        Free-form additions (e.g. worker count, figure id).
    """
    from repro.core import kernels

    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "command": command,
        "argv": list(sys.argv),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_rev": git_revision(Path(__file__).resolve().parents[3]),
        "numpy": _numpy_version(),
        "backends": {
            "kernels_auto": kernels.resolve_backend("auto"),
            "has_numpy": kernels.HAS_NUMPY,
        },
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "seed": seed,
    }
    if config is not None:
        manifest["config"] = _jsonable(config)
        manifest["config_sha256"] = config_digest(config)
    if outputs:
        manifest["outputs"] = dict(outputs)
    if extra:
        manifest.update(_jsonable(extra))
    return manifest


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> None:
    """Write ``manifest`` as indented JSON to ``path``."""
    Path(path).write_text(json.dumps(manifest, indent=2, sort_keys=True))
