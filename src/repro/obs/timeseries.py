"""Streaming metric windows: live views over a run that is still going.

PR 3's observability layer is post-hoc — counters and spans surface
when a run *ends*.  This module adds the bounded-memory streaming
primitives that make a registry observable *during* a run:

* :class:`SlidingWindow` — a fixed-capacity ring buffer of
  ``(timestamp, value)`` samples restricted to a time horizon, with
  O(window) mean/min/max/last aggregates;
* :class:`EwmaRate` — an exponentially weighted events-per-second
  estimator (configurable half-life), the "current throughput" number
  behind the heartbeat ``*_per_second`` gauges;
* :class:`P2Quantile` — the Jain & Chlamtac P² streaming quantile
  estimator: five markers, O(1) per observation, no sample retention;
* :class:`Heartbeat` — a throttled emitter the solver hot loops call
  once per move/layer/epoch; it updates ``<name>.heartbeat.*`` gauges
  on the live registry at most every ``interval`` seconds;
* :class:`MetricWindows` — sliding-window aggregation over successive
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots (counter rates
  via deltas, gauge distributions via P²), the summary the periodic
  JSONL metrics stream appends per tick.

Everything is standard library and allocation-light; none of it runs
unless live telemetry was explicitly enabled.
"""

from __future__ import annotations

import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SlidingWindow",
    "EwmaRate",
    "P2Quantile",
    "Heartbeat",
    "MetricWindows",
]


class SlidingWindow:
    """Ring buffer of ``(timestamp, value)`` pairs over a time horizon.

    Holds at most ``max_samples`` samples and, on read, ignores samples
    older than ``duration`` seconds — so memory stays bounded no matter
    how long the run is or how fast it emits.
    """

    __slots__ = ("duration", "max_samples", "_times", "_values", "_head", "_size")

    def __init__(self, duration: float = 60.0, max_samples: int = 256) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.duration = float(duration)
        self.max_samples = int(max_samples)
        self._times: List[float] = [0.0] * self.max_samples
        self._values: List[float] = [0.0] * self.max_samples
        self._head = 0  # next write position
        self._size = 0

    def observe(self, value: float, now: Optional[float] = None) -> None:
        """Append one sample (oldest sample evicted when full)."""
        if now is None:
            now = time.monotonic()
        self._times[self._head] = now
        self._values[self._head] = float(value)
        self._head = (self._head + 1) % self.max_samples
        if self._size < self.max_samples:
            self._size += 1

    def __len__(self) -> int:
        return self._size

    def samples(self, now: Optional[float] = None) -> List[Tuple[float, float]]:
        """The in-horizon samples, oldest first."""
        if now is None:
            now = time.monotonic()
        horizon = now - self.duration
        out: List[Tuple[float, float]] = []
        start = (self._head - self._size) % self.max_samples
        for offset in range(self._size):
            index = (start + offset) % self.max_samples
            if self._times[index] >= horizon:
                out.append((self._times[index], self._values[index]))
        return out

    def stats(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Aggregates over the in-horizon samples.

        Returns ``count``/``mean``/``min``/``max``/``last`` plus
        ``rate`` — samples per second over the observed span (0 when
        fewer than two samples are in the window).
        """
        samples = self.samples(now)
        if not samples:
            return {
                "count": 0,
                "mean": None,
                "min": None,
                "max": None,
                "last": None,
                "rate": 0.0,
            }
        values = [value for _, value in samples]
        span = samples[-1][0] - samples[0][0]
        return {
            "count": len(values),
            "mean": math.fsum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "last": values[-1],
            "rate": (len(values) - 1) / span if span > 0 else 0.0,
        }


class EwmaRate:
    """Exponentially weighted moving average of an event rate.

    ``update(count, now)`` feeds the number of events since the last
    update; the estimator blends the instantaneous rate ``count / dt``
    into the running average with a weight derived from the configured
    half-life, so a 5-second half-life forgets half of what it knew
    every 5 seconds regardless of the update cadence.
    """

    __slots__ = ("halflife", "_rate", "_last")

    def __init__(self, halflife: float = 5.0) -> None:
        if halflife <= 0:
            raise ValueError(f"halflife must be > 0, got {halflife}")
        self.halflife = float(halflife)
        self._rate: Optional[float] = None
        self._last: Optional[float] = None

    def update(self, count: float, now: Optional[float] = None) -> float:
        """Fold in ``count`` events observed since the previous update."""
        if now is None:
            now = time.monotonic()
        if self._last is None:
            # First update has no time base yet; remember the anchor.
            self._last = now
            self._rate = None
            return 0.0
        dt = now - self._last
        if dt <= 0:
            return self._rate or 0.0
        instantaneous = count / dt
        if self._rate is None:
            self._rate = instantaneous
        else:
            alpha = 1.0 - 2.0 ** (-dt / self.halflife)
            self._rate += alpha * (instantaneous - self._rate)
        self._last = now
        return self._rate

    @property
    def rate(self) -> float:
        """The current events-per-second estimate (0 before warm-up)."""
        return self._rate if self._rate is not None else 0.0


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Five markers track the running quantile without retaining samples:
    O(1) time and memory per observation.  Estimates converge on the
    true quantile for stationary streams (validated against numpy
    percentiles in ``tests/test_timeseries.py``).
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: List[float] = []
        self._positions = [0.0, 1.0, 2.0, 3.0, 4.0]
        self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights = self._heights
        positions = self._positions
        # Locate the cell, pinning the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if value < heights[i]:
                    cell = i - 1
                    break
            else:
                cell = 3
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired spots.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def count(self) -> int:
        return self._count

    @property
    def value(self) -> Optional[float]:
        """The current quantile estimate (``None`` before any sample)."""
        if not self._heights:
            return None
        if len(self._heights) < 5:
            # Exact small-sample quantile until the markers are seeded.
            rank = self.q * (len(self._heights) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(self._heights) - 1)
            fraction = rank - lower
            return (
                self._heights[lower] * (1.0 - fraction)
                + self._heights[upper] * fraction
            )
        return self._heights[2]


class Heartbeat:
    """Throttled live-progress gauges for long-running solver loops.

    A hot loop calls :meth:`beat` every iteration; at most once per
    ``interval`` seconds the heartbeat writes each keyword as a
    ``<name>.heartbeat.<key>`` gauge on the registry, bumps the
    ``<name>.heartbeat.beats`` counter, and — for keys listed in
    ``rates`` — publishes an EWMA ``<key>_per_second`` gauge derived
    from the key's increments (the "measured Δ-evaluations/s" number).
    A final unthrottled :meth:`flush` publishes the loop's last state.

    Construct via :func:`repro.obs.heartbeat`, which returns ``None``
    when metrics are disabled so the per-iteration cost of a dormant
    call site is a single ``is not None`` test.
    """

    __slots__ = ("name", "interval", "_registry", "_rates", "_ewma", "_last_value", "_last_emit", "_beats", "_now")

    def __init__(
        self,
        name: str,
        registry: Any,
        *,
        interval: float = 0.25,
        rates: Sequence[str] = (),
        halflife: float = 2.0,
        now: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.interval = float(interval)
        self._registry = registry
        self._rates = tuple(rates)
        self._ewma = {key: EwmaRate(halflife=halflife) for key in self._rates}
        self._last_value: Dict[str, float] = {}
        self._last_emit = 0.0
        self._beats = 0
        # Injectable monotonic time source (a zero-arg callable) so the
        # serve loop's fake clock drives throttling deterministically.
        self._now = now if now is not None else time.monotonic

    def beat(self, **values: float) -> bool:
        """Record one loop iteration; emits only when the throttle opens."""
        now = self._now()
        if now - self._last_emit < self.interval:
            return False
        self._emit(now, values)
        return True

    def flush(self, **values: float) -> None:
        """Unthrottled final emit (loop finished or converged)."""
        self._emit(self._now(), values)

    def _emit(self, now: float, values: Dict[str, float]) -> None:
        self._last_emit = now
        self._beats += 1
        prefix = f"{self.name}.heartbeat"
        registry = self._registry
        for key, value in values.items():
            registry.gauge(f"{prefix}.{key}").set(value)
            ewma = self._ewma.get(key)
            if ewma is not None:
                delta = value - self._last_value.get(key, 0.0)
                self._last_value[key] = value
                rate = ewma.update(delta, now)
                registry.gauge(f"{prefix}.{key}_per_second").set(rate)
        registry.counter(f"{prefix}.beats").inc()

    @property
    def beats(self) -> int:
        """Number of emits that cleared the throttle."""
        return self._beats


class MetricWindows:
    """Sliding-window aggregation over successive registry snapshots.

    Call :meth:`sample` periodically (the JSONL metrics stream does,
    once per tick): counters turn into EWMA rates plus a window of
    per-tick deltas; gauges feed a window of values and a P² median.
    :meth:`summary` renders the whole thing as one JSON-ready dict —
    the bounded-memory live view of an arbitrarily long run.
    """

    def __init__(
        self,
        *,
        window: float = 60.0,
        max_samples: int = 256,
        halflife: float = 5.0,
        quantile: float = 0.5,
    ) -> None:
        self.window = float(window)
        self.max_samples = int(max_samples)
        self.halflife = float(halflife)
        self.quantile = float(quantile)
        self._counter_last: Dict[str, float] = {}
        self._counter_rate: Dict[str, EwmaRate] = {}
        self._counter_window: Dict[str, SlidingWindow] = {}
        self._gauge_window: Dict[str, SlidingWindow] = {}
        self._gauge_p2: Dict[str, P2Quantile] = {}

    def sample(self, snapshot: Dict[str, Any], now: Optional[float] = None) -> None:
        """Fold one registry snapshot into the windows."""
        if now is None:
            now = time.monotonic()
        for key, value in snapshot.get("counters", {}).items():
            delta = value - self._counter_last.get(key, 0.0)
            self._counter_last[key] = value
            rate = self._counter_rate.get(key)
            if rate is None:
                rate = self._counter_rate[key] = EwmaRate(halflife=self.halflife)
            rate.update(delta, now)
            window = self._counter_window.get(key)
            if window is None:
                window = self._counter_window[key] = SlidingWindow(
                    self.window, self.max_samples
                )
            window.observe(delta, now)
        for key, value in snapshot.get("gauges", {}).items():
            if value is None:
                continue
            window = self._gauge_window.get(key)
            if window is None:
                window = self._gauge_window[key] = SlidingWindow(
                    self.window, self.max_samples
                )
                self._gauge_p2[key] = P2Quantile(self.quantile)
            window.observe(value, now)
            self._gauge_p2[key].observe(value)

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The JSON-ready windowed view of every tracked metric."""
        if now is None:
            now = time.monotonic()
        counters = {}
        for key in sorted(self._counter_last):
            stats = self._counter_window[key].stats(now)
            counters[key] = {
                "total": self._counter_last[key],
                "rate_per_second": self._counter_rate[key].rate,
                "window_delta_mean": stats["mean"],
                "window_delta_max": stats["max"],
            }
        gauges = {}
        for key in sorted(self._gauge_window):
            stats = self._gauge_window[key].stats(now)
            gauges[key] = {
                "last": stats["last"],
                "window_mean": stats["mean"],
                "window_min": stats["min"],
                "window_max": stats["max"],
                f"p{int(self.quantile * 100)}": self._gauge_p2[key].value,
            }
        return {
            "window_seconds": self.window,
            "counters": counters,
            "gauges": gauges,
        }
