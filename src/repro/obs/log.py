"""Stderr logging for human-facing progress and diagnostics.

Progress lines used to go to stdout via bare ``print``, which corrupted
machine-parseable output (``figure --csv/--json`` previews, piped
``report`` markdown).  This module routes them through a standard
:mod:`logging` logger whose handler writes to *current* ``sys.stderr``
(resolved per record, so pytest's capture and late redirections work),
keeping stdout exclusively for results.

``REPRO_LOG_LEVEL`` (e.g. ``DEBUG``, ``WARNING``) overrides the default
``INFO`` level.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any

__all__ = ["LOGGER_NAME", "LOG_LEVEL_ENV_VAR", "get_logger", "progress"]

#: Root logger name of the package.
LOGGER_NAME = "repro"

#: Environment variable overriding the default INFO level.
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"


class _CurrentStderrHandler(logging.StreamHandler):
    """A StreamHandler that always writes to the *current* sys.stderr."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> Any:
        return sys.stderr

    @stream.setter
    def stream(self, value: Any) -> None:  # pragma: no cover - unused
        pass


_configured = False


def get_logger(name: str = LOGGER_NAME) -> logging.Logger:
    """The package logger (configured on first use, stderr, no bubbling)."""
    global _configured
    root = logging.getLogger(LOGGER_NAME)
    if not _configured:
        handler = _CurrentStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
        level = os.environ.get(LOG_LEVEL_ENV_VAR, "").strip().upper() or "INFO"
        root.setLevel(getattr(logging, level, logging.INFO))
        root.propagate = False
        _configured = True
    if name == LOGGER_NAME:
        return root
    if not name.startswith(LOGGER_NAME + "."):
        name = f"{LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def progress(message: str) -> None:
    """Progress callback for the experiment runner (stderr via logging)."""
    get_logger("progress").info(message)
