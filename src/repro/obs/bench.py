"""Benchmark history tracking and the regression gate.

The repo's benches each write a ``BENCH_*.json`` at the repo root —
but until now nothing compared one run to the last, so a perf
regression in a hot path (the CDS dirty-pair scan, the SMAWK DP, the
batched simulator) would ship silently.  This module closes the loop:

* :func:`extract_metrics` flattens a BENCH payload into dotted
  ``metric → value`` pairs (``results`` rows keyed by their identity
  fields: kernel/n/k/scan_mode, drift_rate, ...);
* :func:`append_history` appends one JSONL record per bench run to
  ``benchmarks/results/history.jsonl``, keyed by the bench name, the
  config's SHA-256 digest and the git revision — the same provenance
  scheme run manifests use;
* :func:`check_regressions` compares the current metrics against the
  rolling median of the last ``window`` history entries *with the same
  config digest* and flags every tracked metric that moved past the
  threshold in its bad direction (``seconds``/``bytes``/``overhead``
  up, ``speedup``/``per_second`` down).

``repro bench-check`` is the CLI face; ``make bench-check`` and CI
wire it to the bench smoke runs (informational on PRs).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.manifest import config_digest, git_revision

__all__ = [
    "BENCH_HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "ENV_LIMITED_FLAG",
    "Regression",
    "extract_metrics",
    "metric_direction",
    "append_history",
    "load_history",
    "check_regressions",
]

#: Version stamp on every history.jsonl record.
BENCH_HISTORY_SCHEMA_VERSION = 1

#: Where bench history accumulates, relative to the repo root.
DEFAULT_HISTORY_PATH = "benchmarks/results/history.jsonl"

#: Fields that identify a results row rather than measure it.
_IDENTITY_FIELDS = (
    "kernel",
    "n",
    "k",
    "scan_mode",
    "drift_rate",
    "iterations",
    "epochs",
)

#: Top-level / per-row fields that are provenance, not measurements.
_SKIP_FIELDS = frozenset(
    {
        "schema",
        "schema_version",
        "generated_by",
        "benchmark",
        "timestamp",
        "python",
        "platform",
        "machine",
        "note",
        "config",
    }
)

#: Substrings marking a metric where *smaller* is better.
_LOWER_IS_BETTER = ("seconds", "bytes", "rss", "overhead", "gap", "percent")

#: Substrings marking a metric where *larger* is better (checked first:
#: ``warm_epochs_per_second`` must not match the ``seconds`` rule).
_HIGHER_IS_BETTER = ("per_second", "speedup", "reduction")

#: Flag a bench section can set (``"limited_by_cpu_count": true``) when
#: its parallel speedups are bounded by the machine, not the code —
#: e.g. a fan-out bench on a 1-CPU CI container.  Metrics in a flagged
#: section are still recorded in history (the trend stays inspectable)
#: but carry this marker in their name, which turns gating off: a 0.94×
#: speedup on one core is an environment note, not a regression.
ENV_LIMITED_FLAG = "limited_by_cpu_count"

_ENV_LIMITED_MARKER = f"[{ENV_LIMITED_FLAG}]"


def metric_direction(name: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` for gated metrics, ``None`` otherwise.

    Metrics with no recognised direction (event counts, cost values,
    trajectory lengths) are recorded in history for trend inspection
    but never gate — their "right" value is workload-defined.  Metrics
    carrying the :data:`ENV_LIMITED_FLAG` marker never gate either:
    they measure the environment (CPU count), not the code.
    """
    lowered = name.lower()
    if _ENV_LIMITED_MARKER in lowered:
        return None
    if any(token in lowered for token in _HIGHER_IS_BETTER):
        return "higher"
    if any(token in lowered for token in _LOWER_IS_BETTER):
        return "lower"
    return None


def _is_metric_value(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _row_key(row: Dict[str, Any]) -> str:
    # Shares the one identity rendering with the shard store's cell
    # keys (imported lazily: repro.experiments pulls in obs at package
    # import, so a module-level import here would be circular).
    from repro.experiments.records import identity_key

    return identity_key(
        (field, row[field])
        for field in _IDENTITY_FIELDS
        if field in row and row[field] is not None
    )


def _flatten(payload: Any, prefix: str, out: Dict[str, float]) -> None:
    if isinstance(payload, dict):
        env_limited = bool(payload.get(ENV_LIMITED_FLAG))
        for key in sorted(payload):
            if key in _SKIP_FIELDS or key in _IDENTITY_FIELDS:
                continue
            if key == ENV_LIMITED_FLAG:
                continue
            child_prefix = f"{prefix}.{key}" if prefix else key
            if env_limited and metric_direction(key) == "higher":
                # Keep the measurement in history, marked as
                # environment-limited so it never gates.
                child_prefix += _ENV_LIMITED_MARKER
            _flatten(payload[key], child_prefix, out)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            if isinstance(item, dict):
                key = _row_key(item) or f"[{index}]"
                _flatten(item, f"{prefix}{key}", out)
    elif _is_metric_value(payload):
        out[prefix] = float(payload)


def extract_metrics(payload: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a BENCH_*.json payload into dotted metric/value pairs.

    ``results`` rows are keyed by their identity fields, e.g.
    ``results[kernel=cds_refine,n=100,k=8,scan_mode=full].numpy_seconds``;
    config and provenance fields are excluded; null measurements (a
    skipped backend) are dropped.
    """
    out: Dict[str, float] = {}
    _flatten(payload, "", out)
    return out


@dataclass
class Regression:
    """One tracked metric that moved past the threshold."""

    bench: str
    metric: str
    direction: str
    baseline: float
    current: float
    change_percent: float

    def describe(self) -> str:
        arrow = "rose" if self.current > self.baseline else "fell"
        return (
            f"{self.bench}:{self.metric} {arrow} "
            f"{abs(self.change_percent):.1f}% "
            f"({self.baseline:.6g} -> {self.current:.6g}, "
            f"{self.direction}-is-better)"
        )


def _bench_name(path: Union[str, Path]) -> str:
    return Path(path).stem


def append_history(
    bench_path: Union[str, Path],
    history_path: Union[str, Path] = DEFAULT_HISTORY_PATH,
    *,
    repo_root: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Append one history record for a BENCH file; returns the record."""
    bench_path = Path(bench_path)
    payload = json.loads(bench_path.read_text())
    record = {
        "schema": BENCH_HISTORY_SCHEMA_VERSION,
        "ts": time.time(),
        "bench": _bench_name(bench_path),
        "git_revision": git_revision(repo_root),
        "config_sha256": config_digest(payload.get("config", {})),
        "metrics": extract_metrics(payload),
    }
    history_path = Path(history_path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(
    history_path: Union[str, Path] = DEFAULT_HISTORY_PATH,
) -> List[Dict[str, Any]]:
    """All history records, oldest first (missing file → empty)."""
    history_path = Path(history_path)
    if not history_path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with history_path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "metrics" in record:
                records.append(record)
    return records


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_regressions(
    bench: str,
    current_metrics: Dict[str, float],
    history: Iterable[Dict[str, Any]],
    *,
    config_sha256: Optional[str] = None,
    threshold: float = 0.10,
    window: int = 5,
) -> Tuple[List[Regression], Dict[str, Any]]:
    """Compare current metrics to the rolling baseline from history.

    The baseline for each metric is the median over the last ``window``
    history records for the same bench — and, when ``config_sha256``
    is given, the same config digest, so a bench re-parameterised
    between runs never compares apples to oranges.  Only metrics with
    a recognised direction gate; a move past ``threshold`` in the bad
    direction is a :class:`Regression`.  Returns the regressions plus
    a summary dict (baseline counts, compared/gated/skipped metrics).
    """
    relevant = [
        record
        for record in history
        if record.get("bench") == bench
        and (
            config_sha256 is None
            or record.get("config_sha256") == config_sha256
        )
    ]
    recent = relevant[-window:]
    regressions: List[Regression] = []
    compared = 0
    gated = 0
    for metric, current in sorted(current_metrics.items()):
        baselines = [
            record["metrics"][metric]
            for record in recent
            if _is_metric_value(record.get("metrics", {}).get(metric))
        ]
        if not baselines:
            continue
        compared += 1
        direction = metric_direction(metric)
        if direction is None:
            continue
        baseline = _median(baselines)
        if baseline == 0:
            continue
        gated += 1
        change = (current - baseline) / abs(baseline)
        bad = change > threshold if direction == "lower" else change < -threshold
        if bad:
            regressions.append(
                Regression(
                    bench=bench,
                    metric=metric,
                    direction=direction,
                    baseline=baseline,
                    current=current,
                    change_percent=change * 100.0,
                )
            )
    summary = {
        "bench": bench,
        "history_records": len(relevant),
        "baseline_window": len(recent),
        "metrics_compared": compared,
        "metrics_gated": gated,
        "regressions": len(regressions),
        "threshold_percent": threshold * 100.0,
    }
    return regressions, summary
