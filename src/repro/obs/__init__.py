"""Observability: tracing spans, metrics and run manifests.

The package is dependency-free and **off by default**: the module-level
tracer and metrics registry start as no-op singletons, so instrumented
hot paths (``drp_allocate``, ``cds_refine``, ``contiguous_optimal``,
the experiment runner, the simulators) pay only a handful of trivial
calls per *run* — never per item, move or event.  The no-op budget is
enforced by ``benchmarks/bench_obs_overhead.py`` and the regression
test in ``tests/test_obs_integration.py``.

Enabling
--------
* CLI: ``repro ... --trace out.jsonl --metrics metrics.json`` — flags
  available on every subcommand; a manifest is written alongside.
* Environment: ``REPRO_TRACE=out.jsonl`` / ``REPRO_METRICS=m.json``.
* Programmatic::

      from repro import obs
      tracer, registry = obs.configure(trace=True, metrics=True)
      ...  # run instrumented code
      tracer.export_jsonl("t.jsonl")       # or .export_chrome("t.json")
      registry.export_json("m.json")
      obs.reset()

Instrumented code talks to the active instances through
:func:`span` / :func:`get_metrics`; worker processes install their own via
:func:`configure` and ship finished spans / counter snapshots back over
the experiment result pipe (see :mod:`repro.experiments.parallel`).
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple, Union

from repro.obs import log  # noqa: F401  (re-exported submodule)
from repro.obs.manifest import build_manifest, config_digest, write_manifest
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.tracing import (
    JSONL_SCHEMA_VERSION,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    chrome_trace_events,
    jsonl_to_chrome,
)

__all__ = [
    "TRACE_ENV_VAR",
    "METRICS_ENV_VAR",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "JSONL_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "chrome_trace_events",
    "jsonl_to_chrome",
    "build_manifest",
    "config_digest",
    "write_manifest",
    "get_tracer",
    "get_metrics",
    "span",
    "instant",
    "tracing_enabled",
    "configure",
    "configure_from_env",
    "reset",
    "worker_options",
    "log",
]

#: ``REPRO_TRACE=<path.jsonl>`` enables tracing for CLI runs.
TRACE_ENV_VAR = "REPRO_TRACE"

#: ``REPRO_METRICS=<path.json>`` enables the metrics registry.
METRICS_ENV_VAR = "REPRO_METRICS"

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_metrics: Union[MetricsRegistry, NullMetricsRegistry] = NULL_METRICS


# ----------------------------------------------------------------------
# Active-instance access (the only API instrumented code should use)
# ----------------------------------------------------------------------
def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the no-op singleton unless configured)."""
    return _tracer


def get_metrics() -> Union[MetricsRegistry, NullMetricsRegistry]:
    """The active metrics registry (no-op unless configured)."""
    return _metrics


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when disabled)."""
    return _tracer.span(name, **attributes)


def instant(name: str, **attributes: Any) -> None:
    """Record an instant marker on the active tracer."""
    _tracer.instant(name, **attributes)


def tracing_enabled() -> bool:
    """True when a collecting tracer is installed."""
    return _tracer.enabled


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    *,
    trace: bool = False,
    metrics: bool = False,
    track_memory: bool = False,
) -> Tuple[Union[Tracer, NullTracer], Union[MetricsRegistry, NullMetricsRegistry]]:
    """Install fresh tracer/registry instances (or the no-ops).

    Always replaces the current instances — worker processes call this
    in their initializer so a forked child never inherits (and later
    re-ships) spans already recorded by its parent.
    """
    global _tracer, _metrics
    _tracer = Tracer(track_memory=track_memory) if trace else NULL_TRACER
    _metrics = MetricsRegistry() if metrics else NULL_METRICS
    return _tracer, _metrics


def configure_from_env() -> Tuple[Optional[str], Optional[str]]:
    """Enable tracing/metrics per ``REPRO_TRACE`` / ``REPRO_METRICS``.

    Returns the ``(trace_path, metrics_path)`` the environment asked
    for (either may be ``None``).  Does nothing — and preserves any
    programmatic configuration — when neither variable is set.
    """
    trace_path = os.environ.get(TRACE_ENV_VAR, "").strip() or None
    metrics_path = os.environ.get(METRICS_ENV_VAR, "").strip() or None
    if trace_path or metrics_path:
        configure(trace=trace_path is not None, metrics=metrics_path is not None)
    return trace_path, metrics_path


def reset() -> None:
    """Restore the disabled (no-op) tracer and registry."""
    global _tracer, _metrics
    _tracer = NULL_TRACER
    _metrics = NULL_METRICS


def worker_options() -> dict:
    """The observability switches to replicate in a worker process."""
    return {
        "trace": _tracer.enabled,
        "metrics": _metrics.enabled,
        "track_memory": getattr(_tracer, "track_memory", False),
    }
