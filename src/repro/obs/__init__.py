"""Observability: tracing spans, metrics, manifests and live telemetry.

The package is dependency-free and **off by default**: the module-level
tracer and metrics registry start as no-op singletons, so instrumented
hot paths (``drp_allocate``, ``cds_refine``, ``contiguous_optimal``,
the experiment runner, the simulators) pay only a handful of trivial
calls per *run* — never per item, move or event.  The no-op budget is
enforced by ``benchmarks/bench_obs_overhead.py`` and the regression
test in ``tests/test_obs_integration.py``.

Enabling
--------
* CLI: ``repro ... --trace out.jsonl --metrics metrics.json`` — flags
  available on every subcommand; a manifest is written alongside.
* Environment: ``REPRO_TRACE=out.jsonl`` / ``REPRO_METRICS=m.json``.
* Programmatic::

      from repro import obs
      tracer, registry = obs.configure(trace=True, metrics=True)
      ...  # run instrumented code
      tracer.export_jsonl("t.jsonl")       # or .export_chrome("t.json")
      registry.export_json("m.json")
      obs.reset()

Live telemetry (all opt-in, see ``docs/observability.md``):

* :func:`start_metrics_server` — background ``/metrics`` endpoint
  (``--metrics-port`` / ``REPRO_METRICS_PORT``) serving the OpenMetrics
  rendering of :func:`live_snapshot`;
* :func:`start_metrics_stream` — scrape-free periodic JSONL summaries
  (``--metrics-stream`` / ``REPRO_METRICS_STREAM``);
* :func:`start_profiler` — statistical sampling profiler with
  folded-stack export (``--profile`` / ``REPRO_PROFILE``);
* :func:`heartbeat` — throttled progress gauges for solver hot loops
  (returns ``None`` when metrics are disabled, so a dormant call site
  costs one ``is not None`` test per iteration).

Instrumented code talks to the active instances through
:func:`span` / :func:`get_metrics`; worker processes install their own via
:func:`configure` and ship finished spans / counter snapshots back over
the experiment result pipe (see :mod:`repro.experiments.parallel`).
The module-level singletons are guarded by a lock so the background
exposition/stream threads can never observe a half-swapped pair.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.obs import log  # noqa: F401  (re-exported submodule)
from repro.obs.exposition import (
    MetricsServer,
    MetricsStream,
    render_openmetrics,
)
from repro.obs.manifest import build_manifest, config_digest, write_manifest
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.timeseries import (
    EwmaRate,
    Heartbeat,
    MetricWindows,
    P2Quantile,
    SlidingWindow,
)
from repro.obs.tracing import (
    JSONL_SCHEMA_VERSION,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    chrome_trace_events,
    jsonl_to_chrome,
)

__all__ = [
    "TRACE_ENV_VAR",
    "METRICS_ENV_VAR",
    "METRICS_PORT_ENV_VAR",
    "METRICS_STREAM_ENV_VAR",
    "PROFILE_ENV_VAR",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS",
    "JSONL_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "MetricsServer",
    "MetricsStream",
    "SamplingProfiler",
    "SlidingWindow",
    "EwmaRate",
    "P2Quantile",
    "Heartbeat",
    "MetricWindows",
    "render_openmetrics",
    "chrome_trace_events",
    "jsonl_to_chrome",
    "build_manifest",
    "config_digest",
    "write_manifest",
    "get_tracer",
    "get_metrics",
    "span",
    "instant",
    "tracing_enabled",
    "configure",
    "configure_from_env",
    "reset",
    "worker_options",
    "heartbeat",
    "live_snapshot",
    "update_live_overlay",
    "clear_live_overlay",
    "clear_live_overlays",
    "live_telemetry_active",
    "start_metrics_server",
    "start_metrics_stream",
    "start_profiler",
    "get_metrics_server",
    "get_profiler",
    "stop_live",
    "log",
]

#: ``REPRO_TRACE=<path.jsonl>`` enables tracing for CLI runs.
TRACE_ENV_VAR = "REPRO_TRACE"

#: ``REPRO_METRICS=<path.json>`` enables the metrics registry.
METRICS_ENV_VAR = "REPRO_METRICS"

#: ``REPRO_METRICS_PORT=<port>`` serves live ``/metrics`` during a run.
METRICS_PORT_ENV_VAR = "REPRO_METRICS_PORT"

#: ``REPRO_METRICS_STREAM=<path.jsonl>`` appends periodic summaries.
METRICS_STREAM_ENV_VAR = "REPRO_METRICS_STREAM"

#: ``REPRO_PROFILE=<path.folded>`` attaches the sampling profiler.
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: Guards every read-modify-write of the module-level singletons below,
#: so a configure/reset racing a background exposition thread can never
#: expose a half-swapped tracer/registry pair.
_state_lock = threading.RLock()

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_metrics: Union[MetricsRegistry, NullMetricsRegistry] = NULL_METRICS

# Live facilities (all None unless explicitly started).
_metrics_server: Optional[MetricsServer] = None
_metrics_stream: Optional[MetricsStream] = None
_profiler: Optional[SamplingProfiler] = None

#: Latest *cumulative* metrics snapshot shipped by each live worker,
#: keyed by worker pid.  Overlays feed only :func:`live_snapshot` —
#: the authoritative end-of-run registry is still built exclusively
#: from per-cell drain snapshots merged in grid order, which is what
#: keeps serial and parallel final metrics bitwise identical.
_live_overlays: Dict[int, Dict[str, Any]] = {}
_overlay_lock = threading.Lock()


# ----------------------------------------------------------------------
# Active-instance access (the only API instrumented code should use)
# ----------------------------------------------------------------------
def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the no-op singleton unless configured)."""
    return _tracer


def get_metrics() -> Union[MetricsRegistry, NullMetricsRegistry]:
    """The active metrics registry (no-op unless configured)."""
    return _metrics


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op when disabled)."""
    return _tracer.span(name, **attributes)


def instant(name: str, **attributes: Any) -> None:
    """Record an instant marker on the active tracer."""
    _tracer.instant(name, **attributes)


def tracing_enabled() -> bool:
    """True when a collecting tracer is installed."""
    return _tracer.enabled


def heartbeat(
    name: str,
    *,
    interval: float = 0.25,
    rates: Tuple[str, ...] = (),
    now: Optional[Callable[[], float]] = None,
) -> Optional[Heartbeat]:
    """A throttled live-progress emitter, or ``None`` when disabled.

    Long-running loops create one before entering the hot path::

        hb = obs.heartbeat("cds", rates=("delta_evaluations",))
        while improving:
            ...
            if hb is not None:
                hb.beat(moves=moves, cost=cost, delta_evaluations=evals)

    The ``None`` return in disabled mode keeps the per-iteration cost
    to a single identity test — no throttle check, no clock read.
    ``now`` injects a monotonic time source (the serve loop passes its
    :class:`~repro.service.clock.Clock` so fake-clock tests control the
    throttle).
    """
    registry = _metrics
    if not registry.enabled:
        return None
    return Heartbeat(name, registry, interval=interval, rates=rates, now=now)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    *,
    trace: bool = False,
    metrics: bool = False,
    track_memory: bool = False,
) -> Tuple[Union[Tracer, NullTracer], Union[MetricsRegistry, NullMetricsRegistry]]:
    """Install fresh tracer/registry instances (or the no-ops).

    Always replaces the current instances — worker processes call this
    in their initializer so a forked child never inherits (and later
    re-ships) spans already recorded by its parent.
    """
    global _tracer, _metrics
    with _state_lock:
        _tracer = Tracer(track_memory=track_memory) if trace else NULL_TRACER
        _metrics = MetricsRegistry() if metrics else NULL_METRICS
        return _tracer, _metrics


def configure_from_env() -> Tuple[Optional[str], Optional[str]]:
    """Enable tracing/metrics per ``REPRO_TRACE`` / ``REPRO_METRICS``.

    Returns the ``(trace_path, metrics_path)`` the environment asked
    for (either may be ``None``).  Does nothing — and preserves any
    programmatic configuration — when neither variable is set.
    """
    trace_path = os.environ.get(TRACE_ENV_VAR, "").strip() or None
    metrics_path = os.environ.get(METRICS_ENV_VAR, "").strip() or None
    if trace_path or metrics_path:
        configure(trace=trace_path is not None, metrics=metrics_path is not None)
    return trace_path, metrics_path


def reset() -> None:
    """Restore the disabled (no-op) tracer and registry.

    Also tears down any live facilities (server, stream, profiler) and
    drops worker overlays, so tests and sequential CLI invocations
    always start from a clean slate.
    """
    global _tracer, _metrics
    stop_live()
    with _state_lock:
        _tracer = NULL_TRACER
        _metrics = NULL_METRICS
    with _overlay_lock:
        _live_overlays.clear()


def worker_options() -> dict:
    """The observability switches to replicate in a worker process.

    Reads the tracer/registry pair under the state lock so a
    concurrent :func:`configure` can never yield a mixed view (e.g.
    the old tracer with the new registry).
    """
    with _state_lock:
        tracer, metrics = _tracer, _metrics
    return {
        "trace": tracer.enabled,
        "metrics": metrics.enabled,
        "track_memory": getattr(tracer, "track_memory", False),
    }


# ----------------------------------------------------------------------
# Live telemetry
# ----------------------------------------------------------------------
def live_snapshot() -> Dict[str, Any]:
    """The live metrics view: local registry plus worker overlays.

    In a serial run this is exactly ``get_metrics().snapshot()``.  In a
    parallel run the latest cumulative snapshot each worker shipped is
    merged on top (counters/histograms add, gauges last-write in pid
    order) into a throwaway registry — the authoritative registry is
    never written by the live path, so enabling live telemetry cannot
    perturb final results or their serial/parallel parity.
    """
    base = _metrics.snapshot()
    with _overlay_lock:
        if not _live_overlays:
            return base
        overlays = [snapshot for _, snapshot in sorted(_live_overlays.items())]
    view = MetricsRegistry()
    view.merge(base)
    for overlay in overlays:
        view.merge(overlay)
    return view.snapshot()


def update_live_overlay(pid: int, snapshot: Dict[str, Any]) -> None:
    """Record a worker's latest cumulative snapshot (live view only)."""
    with _overlay_lock:
        _live_overlays[pid] = snapshot


def clear_live_overlay(pid: int) -> None:
    """Drop a worker's overlay — its authoritative drain arrived."""
    with _overlay_lock:
        _live_overlays.pop(pid, None)


def clear_live_overlays() -> None:
    """Drop every worker overlay (the pool finished or was torn down)."""
    with _overlay_lock:
        _live_overlays.clear()


def live_telemetry_active() -> bool:
    """True when a live consumer (server or stream) is running."""
    return _metrics_server is not None or _metrics_stream is not None


def start_metrics_server(
    port: int, *, host: str = "127.0.0.1"
) -> MetricsServer:
    """Start (or return) the background ``/metrics`` endpoint."""
    global _metrics_server
    with _state_lock:
        if _metrics_server is None:
            _metrics_server = MetricsServer(
                live_snapshot, host=host, port=port
            ).start()
        return _metrics_server


def start_metrics_stream(
    path: str, *, interval: float = 1.0
) -> MetricsStream:
    """Start (or return) the periodic JSONL metrics stream."""
    global _metrics_stream
    with _state_lock:
        if _metrics_stream is None:
            _metrics_stream = MetricsStream(
                live_snapshot, path, interval=interval
            ).start()
        return _metrics_stream


def start_profiler(*, interval: float = 0.005) -> SamplingProfiler:
    """Attach (or return) the sampling profiler for the calling thread."""
    global _profiler
    with _state_lock:
        if _profiler is None:
            _profiler = SamplingProfiler(
                interval=interval, tracer=_tracer
            ).start()
        return _profiler


def get_metrics_server() -> Optional[MetricsServer]:
    return _metrics_server


def get_profiler() -> Optional[SamplingProfiler]:
    return _profiler


def stop_live() -> Dict[str, Any]:
    """Stop all live facilities; returns what ran (for final export).

    The profiler instance is returned still holding its samples so the
    caller can ``export_folded`` after stopping.
    """
    global _metrics_server, _metrics_stream, _profiler
    with _state_lock:
        server, stream, profiler = _metrics_server, _metrics_stream, _profiler
        _metrics_server = None
        _metrics_stream = None
        _profiler = None
    stopped: Dict[str, Any] = {}
    if server is not None:
        server.stop()
        stopped["server"] = server
    if stream is not None:
        stream.stop()
        stopped["stream"] = stream
    if profiler is not None:
        profiler.stop()
        stopped["profiler"] = profiler
    return stopped
