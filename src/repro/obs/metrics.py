"""Metrics registry: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` names instruments with a dotted string plus
optional labels (``registry.gauge("sim.channel_utilization",
channel=3)``).  Snapshots are plain JSON-ready dicts
(:meth:`MetricsRegistry.snapshot`), and two registries can be combined
with :meth:`MetricsRegistry.merge` — the parent-process half of
cross-process collection (workers ship
:meth:`MetricsRegistry.drain_snapshot` over the result pipe).

Like tracing, metrics are off by default: the module-level registry is
:data:`NULL_METRICS`, whose instruments are shared no-op singletons, so
an ``obs.metrics().counter("x").inc(n)`` in disabled mode costs two
trivial method calls at span granularity (never per item / per event).
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA_VERSION",
]

#: Version stamp written into every metrics snapshot.  Version 2 added
#: ``min``/``max`` to histogram payloads; :meth:`MetricsRegistry.merge`
#: still accepts version-1 snapshots (their min/max is unknown and
#: merges as "no observations beyond the counts").
METRICS_SCHEMA_VERSION = 2

#: Default histogram buckets: log-ish spread from sub-millisecond to
#: minutes, suitable for the timing distributions this repo records.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    60.0,
)

_LabelKey = Tuple[Tuple[str, Any], ...]


def _render_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``buckets`` are upper bounds; an implicit ``+inf`` bucket catches
    the tail.  Bucket counts are cumulative-free (one count per bucket),
    which keeps merging a plain element-wise add.  ``low``/``high``
    track the observed extremes so a snapshot can report mean/min/max
    without a parallel counter (and so the OpenMetrics exposition can
    emit ``_sum``/``_count`` plus min/max gauges).
    """

    __slots__ = ("buckets", "counts", "count", "total", "low", "high")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def drain_snapshot(self) -> Dict[str, Any]:
        return self.snapshot()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass


#: The process-wide disabled registry (a singleton; also the default).
NULL_METRICS = NullMetricsRegistry()


class MetricsRegistry:
    """Collecting registry of named counters, gauges and histograms.

    A small structure lock protects the instrument dictionaries so a
    background reader (the ``/metrics`` exposition thread, a worker's
    periodic live-snapshot shipper) can iterate them while the owning
    thread keeps creating instruments.  Instrument *updates* stay
    lock-free: the recording thread is the only writer, and readers
    tolerate the transiently torn histogram a concurrent ``observe``
    can produce — the authoritative end-of-run snapshot is taken by the
    recording thread itself.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _render_key(name, tuple(sorted(labels.items())))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _render_key(name, tuple(sorted(labels.items())))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = _render_key(name, tuple(sorted(labels.items())))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(buckets)
                )
        return instrument

    # ------------------------------------------------------------------
    # Snapshots / merging
    # ------------------------------------------------------------------
    def _snapshot_locked(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {
                key: counter.value for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.low,
                    "max": histogram.high,
                }
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def snapshot(self) -> Dict[str, Any]:
        """The current state as a JSON-ready dict (schema 2)."""
        with self._lock:
            return self._snapshot_locked()

    def drain_snapshot(self) -> Dict[str, Any]:
        """Snapshot and reset — the worker-side half of merging."""
        with self._lock:
            snapshot = self._snapshot_locked()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snapshot

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram counts/sums/extremes add; gauges take
        the snapshot's value (callers merge in deterministic order, so
        "last write wins" is reproducible).  Accepts both schema-2 and
        the pre-min/max schema-1 payloads — a v1 histogram merges its
        counts and sum, leaving the extremes untouched.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counter_by_key(key).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self._gauge_by_key(key).set(value)
        for key, payload in snapshot.get("histograms", {}).items():
            histogram = self._histogram_by_key(key, payload["buckets"])
            if list(histogram.buckets) != [float(b) for b in payload["buckets"]]:
                raise ValueError(
                    f"cannot merge histogram {key!r}: bucket bounds differ"
                )
            for index, count in enumerate(payload["counts"]):
                histogram.counts[index] += count
            histogram.count += payload["count"]
            histogram.total += payload["sum"]
            low = payload.get("min")
            if low is not None and (histogram.low is None or low < histogram.low):
                histogram.low = low
            high = payload.get("max")
            if high is not None and (
                histogram.high is None or high > histogram.high
            ):
                histogram.high = high

    # Keyed lookups used by merge(): the rendered key already includes
    # labels, so it is used verbatim.
    def _counter_by_key(self, key: str) -> Counter:
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(key, Counter())
        return instrument

    def _gauge_by_key(self, key: str) -> Gauge:
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge())
        return instrument

    def _histogram_by_key(self, key: str, buckets: List[float]) -> Histogram:
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(buckets)
                )
        return instrument

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_json(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True))
