"""Injectable time sources for the live service.

Everything in :mod:`repro.service` that touches wall time does so
through a :class:`Clock` — a monotonic ``now()`` plus a ``sleep()``.
Production uses :class:`SystemClock` (``time.monotonic`` +
``time.sleep``); tests inject ``tests/fakeclock.py``'s ``FakeClock``,
whose ``sleep`` advances virtual time instantly, so every serve test is
wall-clock-free and deterministic (ISSUE 10 satellite 1).
"""

from __future__ import annotations

import time

try:  # Protocol is typing-only; keep 3.7 compatibility cheaply.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient pythons
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = ["Clock", "SystemClock"]


@runtime_checkable
class Clock(Protocol):
    """Monotonic time source with a cooperative sleep."""

    def now(self) -> float:
        """Seconds on a monotonic clock (origin unspecified)."""

    def sleep(self, seconds: float) -> None:
        """Block (or virtually advance) for ``seconds`` seconds."""


class SystemClock:
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
