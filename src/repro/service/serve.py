"""The live broadcast service: ingest, estimate, re-allocate, hand over.

This is ROADMAP item 1 — the long-running server the paper's Figure 1
implies but never builds.  It composes three existing subsystems:

* **streaming estimation** — a :class:`~repro.workloads.sketch.CountMinSketch`
  with exponential decay absorbs every request in O(depth) time and
  O(width × depth) state, so tracking millions of clients costs the
  same as tracking hundreds;
* **epoch re-allocation** — at each epoch boundary the sketch's profile
  is re-estimated over the catalogue and routed through the
  :class:`~repro.core.incremental.IncrementalAllocator` (warm-start +
  LRU cache + 1.02× regression guard, PR 4);
* **drain/handover** — a freshly built allocation is *staged*, not
  installed: the old :class:`~repro.simulation.server.BroadcastProgram`
  keeps serving until the next **major-cycle boundary** of the current
  program, so no request ever observes a torn schedule
  (:class:`LiveProgram`).

Time has two axes here.  *Stream time* (record timestamps) drives
everything semantically: epochs, sketch decay, handover boundaries.
The injectable :class:`~repro.service.clock.Clock` drives only pacing
and heartbeat throttling — with the test suite's fake clock the whole
loop runs wall-clock-free (ISSUE 10 satellite 1).

See ``docs/serving.md`` for the architecture walk-through, the epoch /
drain protocol, and sketch sizing guidance.
"""

from __future__ import annotations

import math
import socket
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro import obs
from repro.core.allocation import ChannelAllocation
from repro.core.cost import DEFAULT_BANDWIDTH
from repro.core.database import BroadcastDatabase
from repro.core.incremental import (
    DEFAULT_REGRESSION_GUARD,
    AllocationCache,
    IncrementalAllocator,
)
from repro.core.item import DataItem
from repro.exceptions import SimulationError
from repro.service.clock import Clock, SystemClock
from repro.simulation.adaptive import RotatingDrift
from repro.simulation.metrics import SummaryStatistics, summarize
from repro.simulation.server import BroadcastProgram
from repro.workloads.estimator import profile_l1_error
from repro.workloads.sketch import CountMinSketch
from repro.workloads.trace import TraceRecord, iter_trace_jsonl

__all__ = [
    "HandoverRecord",
    "LiveProgram",
    "ServeEpochReport",
    "BroadcastService",
    "drifting_stream",
    "replay_source",
    "SocketSource",
]


# ----------------------------------------------------------------------
# Drain / handover
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HandoverRecord:
    """One completed allocation handover, for auditing drain correctness.

    ``switch_at - old_activated_at`` is always an integer multiple of
    ``old_major_cycle`` (the cycle-boundary invariant the torn-schedule
    test asserts), and ``promoted_at`` — the stream time of the first
    request served by the new program — is never before ``switch_at``.
    """

    requested_at: float
    switch_at: float
    old_activated_at: float
    old_major_cycle: float
    old_generation: int
    new_generation: int
    promoted_at: float


class LiveProgram:
    """The currently-broadcast program plus an optional staged successor.

    The drain/handover protocol in one place:

    1. :meth:`stage` accepts a new allocation at stream time
       ``requested_at`` and computes ``switch_at`` — the first
       major-cycle boundary of the *current* program at or after
       ``requested_at`` (major cycle = the longest per-channel cycle,
       so every channel is at a cycle start).
    2. :meth:`program_for` serves every request with
       ``t < switch_at`` from the old program — the drain.  The first
       request with ``t >= switch_at`` promotes the staged program
       (its ``activated_at`` is ``switch_at``, not the request time, so
       subsequent boundaries stay aligned) and is served by it.

    Re-staging before the switch replaces the pending program (latest
    allocation wins — the earlier one was never observable).
    """

    def __init__(
        self,
        allocation: ChannelAllocation,
        *,
        bandwidth: float = DEFAULT_BANDWIDTH,
        activated_at: float = 0.0,
    ) -> None:
        self._bandwidth = float(bandwidth)
        self._program = BroadcastProgram(allocation, bandwidth=self._bandwidth)
        self._activated_at = float(activated_at)
        self._generation = 0
        self._pending: Optional[Tuple[float, float, BroadcastProgram]] = None
        self._handovers: List[HandoverRecord] = []

    @property
    def program(self) -> BroadcastProgram:
        """The program currently on air (ignores any pending stage)."""
        return self._program

    @property
    def allocation(self) -> ChannelAllocation:
        return self._program.allocation

    @property
    def generation(self) -> int:
        """Number of completed handovers since construction."""
        return self._generation

    @property
    def activated_at(self) -> float:
        """Stream time the current program went on air."""
        return self._activated_at

    @property
    def major_cycle(self) -> float:
        """The longest per-channel cycle of the current program.

        Every ``major_cycle`` seconds after ``activated_at``, all
        channels are simultaneously at a cycle start — the only instants
        a handover is allowed to occur.
        """
        return max(channel.cycle_length for channel in self._program.channels)

    @property
    def pending_switch_at(self) -> Optional[float]:
        """Stream time of the staged handover (``None`` when idle)."""
        return None if self._pending is None else self._pending[1]

    @property
    def handovers(self) -> List[HandoverRecord]:
        """Completed handovers, oldest first (audit log)."""
        return list(self._handovers)

    def stage(
        self, allocation: ChannelAllocation, *, requested_at: float
    ) -> float:
        """Stage ``allocation`` for the next cycle boundary; returns it.

        The switch time is ``activated_at + k · major_cycle`` with the
        smallest integer ``k`` making it ``>= requested_at``; requests
        before that instant keep draining against the old program.
        """
        if not math.isfinite(requested_at):
            raise SimulationError(
                f"requested_at must be finite, got {requested_at!r}"
            )
        cycle = self.major_cycle
        elapsed = max(0.0, requested_at - self._activated_at)
        boundaries = math.ceil(elapsed / cycle)
        switch_at = self._activated_at + boundaries * cycle
        if switch_at < requested_at:  # float round-down guard
            switch_at += cycle
        self._pending = (
            float(requested_at),
            switch_at,
            BroadcastProgram(allocation, bandwidth=self._bandwidth),
        )
        return switch_at

    def program_for(self, timestamp: float) -> BroadcastProgram:
        """The program serving a request at stream time ``timestamp``.

        Promotes the staged program when ``timestamp`` has reached its
        switch time; otherwise the old program keeps serving (drain).
        """
        pending = self._pending
        if pending is not None and timestamp >= pending[1]:
            requested_at, switch_at, program = pending
            self._handovers.append(
                HandoverRecord(
                    requested_at=requested_at,
                    switch_at=switch_at,
                    old_activated_at=self._activated_at,
                    old_major_cycle=self.major_cycle,
                    old_generation=self._generation,
                    new_generation=self._generation + 1,
                    promoted_at=timestamp,
                )
            )
            self._program = program
            self._activated_at = switch_at
            self._generation += 1
            self._pending = None
            registry = obs.get_metrics()
            if registry.enabled:
                registry.counter("serve.handovers").inc()
        return self._program


# ----------------------------------------------------------------------
# Epoch reports
# ----------------------------------------------------------------------
@dataclass
class ServeEpochReport:
    """Measurements of one served epoch.

    The allocation-provenance fields (``allocation_mode`` /
    ``warm_moves`` / ``cache_hit`` / ``reallocated``) describe how the
    program *serving* this epoch was obtained — the same semantics as
    :class:`~repro.simulation.adaptive.EpochReport`, so an offline
    adaptive oracle run on the same batches lines up report-for-report.
    """

    epoch: int
    start: float
    end: float
    requests: int
    measured: SummaryStatistics
    allocation_cost: float
    engine_cost: float
    profile_drift: float
    allocation_mode: str
    warm_moves: int
    cache_hit: bool
    reallocated: bool
    generation: int
    estimator_state: int
    switch_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready row (the ``--json`` CLI output)."""
        return {
            "epoch": self.epoch,
            "start": self.start,
            "end": self.end,
            "requests": self.requests,
            "wait_mean": self.measured.mean,
            "allocation_cost": self.allocation_cost,
            "engine_cost": self.engine_cost,
            "profile_drift": self.profile_drift,
            "allocation_mode": self.allocation_mode,
            "warm_moves": self.warm_moves,
            "cache_hit": self.cache_hit,
            "reallocated": self.reallocated,
            "generation": self.generation,
            "estimator_state": self.estimator_state,
            "switch_at": self.switch_at,
        }


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class BroadcastService:
    """A long-running broadcaster over a request stream.

    Parameters
    ----------
    sizes:
        The catalogue: every broadcastable item id with its size.
        Catalogue order is the canonical item order for believed
        databases (estimation is deterministic given the stream).
    num_channels:
        Channel count K for every allocation.
    bandwidth:
        Channel bandwidth ``b``.
    epoch_seconds:
        Epoch length in *stream time*; each boundary re-estimates and
        (when the profile drifted) re-allocates.
    sketch:
        The streaming estimator.  Default: a decaying
        :class:`CountMinSketch` (1024×4, half-life = 2 epochs).  Pass
        ``CountMinSketch(..., exact=True)`` for the exact-counter
        oracle mode used by tests and benchmarks.
    smoothing:
        Laplace pseudo-count per catalogue item when normalising the
        sketch profile — keeps never-requested items allocatable (see
        the zero-frequency notes in :mod:`repro.workloads.estimator`).
    initial_database:
        Bootstrap profile for the first allocation; default uniform
        over the catalogue (the honest prior before any data).
    clock:
        Pacing/heartbeat time source; default :class:`SystemClock`.
        Tests inject a fake clock — no real sleeps anywhere.
    pace:
        Replay in real time: sleep until each record's stream time
        (offset to the clock) before serving it.  Off by default —
        ingest as fast as the stream yields.
    regression_guard / cache:
        Forwarded to the :class:`IncrementalAllocator`.
    record_generations:
        Keep a ``(timestamp, generation)`` log of every served request
        (test instrumentation for the torn-schedule assertion; off by
        default — it is O(requests) memory).
    """

    def __init__(
        self,
        sizes: Mapping[str, float],
        num_channels: int,
        *,
        bandwidth: float = DEFAULT_BANDWIDTH,
        epoch_seconds: float = 60.0,
        sketch: Optional[CountMinSketch] = None,
        smoothing: float = 1.0,
        initial_database: Optional[BroadcastDatabase] = None,
        clock: Optional[Clock] = None,
        pace: bool = False,
        regression_guard: Optional[float] = DEFAULT_REGRESSION_GUARD,
        cache: Optional[AllocationCache] = None,
        record_generations: bool = False,
    ) -> None:
        if not sizes:
            raise SimulationError("the catalogue of sizes cannot be empty")
        if epoch_seconds <= 0 or not math.isfinite(epoch_seconds):
            raise SimulationError(
                f"epoch_seconds must be positive and finite, got {epoch_seconds}"
            )
        if smoothing < 0:
            raise SimulationError(f"smoothing must be >= 0, got {smoothing}")
        self._sizes: Dict[str, float] = dict(sizes)
        self._catalogue: List[str] = list(self._sizes)
        self._num_channels = int(num_channels)
        self._bandwidth = float(bandwidth)
        self.epoch_seconds = float(epoch_seconds)
        self._smoothing = float(smoothing)
        self._clock: Clock = clock if clock is not None else SystemClock()
        self._pace = bool(pace)
        if sketch is None:
            sketch = CountMinSketch(
                1024, 4, half_life=2.0 * self.epoch_seconds
            )
        self.sketch = sketch
        self._engine = IncrementalAllocator(
            self._num_channels,
            regression_guard=regression_guard,
            cache=cache if cache is not None else AllocationCache(),
        )
        if initial_database is None:
            uniform = 1.0 / len(self._catalogue)
            initial_database = BroadcastDatabase(
                [
                    DataItem(item_id, frequency=uniform, size=self._sizes[item_id])
                    for item_id in self._catalogue
                ]
            )
        self._believed = initial_database
        result = self._engine.reallocate(self._believed)
        self.live = LiveProgram(result.allocation, bandwidth=self._bandwidth)
        self._allocation_cost = result.cost
        # Provenance of the program serving the *next* epoch.
        self._mode = "cold"
        self._warm_moves = result.warm_moves
        self._cache_hit = False
        self._reallocated = True
        self._pending_switch: Optional[float] = None
        self.reports: List[ServeEpochReport] = []
        self.generation_log: Optional[List[Tuple[float, int]]] = (
            [] if record_generations else None
        )
        self._total_requests = 0
        self._last_drift = 0.0

    @property
    def catalogue(self) -> List[str]:
        return list(self._catalogue)

    @property
    def believed(self) -> BroadcastDatabase:
        """The profile the current allocation was built from."""
        return self._believed

    @property
    def engine(self) -> IncrementalAllocator:
        return self._engine

    @property
    def total_requests(self) -> int:
        return self._total_requests

    # -- the ingestion loop ---------------------------------------------
    def run(
        self,
        source: Iterable[TraceRecord],
        *,
        max_epochs: Optional[int] = None,
    ) -> List[ServeEpochReport]:
        """Consume ``source`` until exhaustion or ``max_epochs`` epochs.

        Returns the epoch reports accumulated *by this call* (the
        service object also keeps the full history in ``reports``).
        The source must yield time-ordered :class:`TraceRecord`s;
        epochs are windows of ``epoch_seconds`` stream time anchored at
        the first record.
        """
        if max_epochs is not None and max_epochs < 1:
            raise SimulationError(
                f"max_epochs must be >= 1, got {max_epochs}"
            )
        clock = self._clock
        heartbeat = obs.heartbeat(
            "serve", rates=("requests",), now=clock.now
        )
        first_report = len(self.reports)
        epoch_start: Optional[float] = None
        epoch_end = 0.0
        waits: List[float] = []
        stream_origin = 0.0
        wall_origin = clock.now()
        last_timestamp: Optional[float] = None
        with obs.span(
            "serve.run",
            channels=self._num_channels,
            items=len(self._catalogue),
            epoch_seconds=self.epoch_seconds,
        ):
            for record in source:
                if (
                    last_timestamp is not None
                    and record.timestamp < last_timestamp
                ):
                    raise SimulationError(
                        f"out-of-order request at t={record.timestamp} "
                        f"(last was t={last_timestamp})"
                    )
                last_timestamp = record.timestamp
                if epoch_start is None:
                    epoch_start = record.timestamp
                    epoch_end = epoch_start + self.epoch_seconds
                    stream_origin = record.timestamp
                    wall_origin = clock.now()
                while record.timestamp >= epoch_end:
                    self._close_epoch(epoch_start, epoch_end, waits)
                    waits = []
                    epoch_start = epoch_end
                    epoch_end = epoch_start + self.epoch_seconds
                    if (
                        max_epochs is not None
                        and len(self.reports) - first_report >= max_epochs
                    ):
                        if heartbeat is not None:
                            heartbeat.flush(
                                requests=self._total_requests,
                                epoch=len(self.reports),
                                generation=self.live.generation,
                            )
                        return self.reports[first_report:]
                if self._pace:
                    lag = (record.timestamp - stream_origin) - (
                        clock.now() - wall_origin
                    )
                    if lag > 0:
                        clock.sleep(lag)
                program = self.live.program_for(record.timestamp)
                waits.append(
                    program.waiting_time(record.item_id, record.timestamp)
                )
                if self.generation_log is not None:
                    self.generation_log.append(
                        (record.timestamp, self.live.generation)
                    )
                self.sketch.add(record.item_id, timestamp=record.timestamp)
                self._total_requests += 1
                registry = obs.get_metrics()
                if registry.enabled:
                    registry.counter("serve.requests").inc()
                if heartbeat is not None:
                    heartbeat.beat(
                        requests=self._total_requests,
                        epoch=len(self.reports),
                        generation=self.live.generation,
                    )
            if waits and epoch_start is not None:
                # Stream exhausted mid-epoch: close the partial epoch.
                self._close_epoch(
                    epoch_start, epoch_end, waits, final=True
                )
        if heartbeat is not None:
            heartbeat.flush(
                requests=self._total_requests,
                epoch=len(self.reports),
                generation=self.live.generation,
            )
        return self.reports[first_report:]

    # -- epoch boundary --------------------------------------------------
    def profile(self, *, timestamp: Optional[float] = None) -> Dict[str, float]:
        """The sketch's current smoothed profile over the catalogue."""
        return self.sketch.estimate_profile(
            self._catalogue, smoothing=self._smoothing, timestamp=timestamp
        )

    def _close_epoch(
        self,
        start: float,
        end: float,
        waits: List[float],
        *,
        final: bool = False,
    ) -> None:
        epoch = len(self.reports)
        with obs.span("serve.epoch", epoch=epoch, requests=len(waits)):
            believed_profile = {
                item.item_id: item.frequency for item in self._believed.items
            }
            cost = _cost_under_profile(
                self.live.allocation, believed_profile
            )
            report = ServeEpochReport(
                epoch=epoch,
                start=start,
                end=end,
                requests=len(waits),
                measured=summarize(waits) if waits else summarize([0.0]),
                allocation_cost=cost,
                engine_cost=self._allocation_cost,
                profile_drift=self._last_drift,
                allocation_mode=self._mode if waits else "idle",
                warm_moves=self._warm_moves,
                cache_hit=self._cache_hit,
                reallocated=self._reallocated,
                generation=self.live.generation,
                estimator_state=self.sketch.state_size,
                switch_at=self._pending_switch,
            )
            self.reports.append(report)
            registry = obs.get_metrics()
            if registry.enabled:
                registry.counter("serve.epochs").inc()
                registry.counter("serve.mode", mode=report.allocation_mode).inc()
                if report.reallocated:
                    registry.counter("serve.reallocations").inc()
                if report.cache_hit:
                    registry.counter("serve.cache_hits").inc()
                registry.gauge("serve.epoch").set(epoch)
                registry.gauge("serve.allocation_cost").set(cost)
                registry.gauge("serve.profile_drift").set(self._last_drift)
                registry.gauge("serve.measured_wait_mean").set(
                    report.measured.mean
                )
                registry.gauge("serve.generation").set(self.live.generation)
                registry.gauge("serve.sketch_state").set(
                    self.sketch.state_size
                )
            self._reallocated = False
            self._cache_hit = False
            self._warm_moves = 0
            self._pending_switch = None
            if final or not waits:
                # No further requests (or an idle gap): nothing to
                # rebuild for — the provenance fields stay cleared.
                self._last_drift = 0.0
                return
            estimated_profile = self.profile(timestamp=end)
            drift = profile_l1_error(believed_profile, estimated_profile)
            self._last_drift = drift
            if drift == 0.0:
                # Zero drift: the deterministic engine would reproduce
                # the current program — reuse it (adaptive.py semantics).
                self._mode = "reused"
                self._cache_hit = True
                if registry.enabled:
                    registry.counter("incremental.cache_hits").inc()
                self._engine.stats.cache_hits += 1
                return
            self._believed = BroadcastDatabase(
                [
                    DataItem(
                        item_id,
                        frequency=estimated_profile[item_id],
                        size=self._sizes[item_id],
                    )
                    for item_id in self._catalogue
                ]
            )
            result = self._engine.reallocate(self._believed)
            self._mode = result.mode
            self._warm_moves = result.warm_moves
            self._cache_hit = result.mode == "cache"
            self._reallocated = True
            self._allocation_cost = result.cost
            self._pending_switch = self.live.stage(
                result.allocation, requested_at=end
            )


def _cost_under_profile(
    allocation: ChannelAllocation, profile: Dict[str, float]
) -> float:
    """Eq.-(3) cost of an allocation under a substituted frequency map."""
    total = 0.0
    for group in allocation.channels:
        freq = sum(profile[item.item_id] for item in group)
        size = sum(item.size for item in group)
        total += freq * size
    return total


# ----------------------------------------------------------------------
# Request sources
# ----------------------------------------------------------------------
def replay_source(path: Any) -> Iterator[TraceRecord]:
    """Stream a JSONL trace from disk (``repro serve --replay``)."""
    return iter_trace_jsonl(path)


def drifting_stream(
    database: BroadcastDatabase,
    *,
    epochs: int,
    requests_per_epoch: int,
    epoch_seconds: float = 60.0,
    drift: Optional[RotatingDrift] = None,
    seed: int = 0,
) -> Iterator[TraceRecord]:
    """A deterministic drifting request stream, epoch-aligned by design.

    Epoch ``e`` occupies stream time ``[e·S, (e+1)·S)`` and contains
    exactly ``requests_per_epoch`` requests at evenly spaced instants,
    with item picks drawn from the epoch's drifted distribution (same
    :class:`RotatingDrift` model and per-epoch seeds as
    :func:`~repro.simulation.adaptive.run_adaptive_simulation`).  The
    even spacing keeps each request inside its intended epoch — which
    is what lets the end-to-end test line the service up against an
    offline oracle batch-for-batch.
    """
    if epochs < 1:
        raise SimulationError(f"epochs must be >= 1, got {epochs}")
    if requests_per_epoch < 1:
        raise SimulationError(
            f"requests_per_epoch must be >= 1, got {requests_per_epoch}"
        )
    if drift is None:
        drift = RotatingDrift(
            [item.frequency for item in database.items], shift_per_epoch=1
        )
    ids = list(database.item_ids)
    step = epoch_seconds / (requests_per_epoch + 1)
    for epoch in range(epochs):
        truth = drift.probabilities(epoch)
        weights = np.asarray(truth, dtype=np.float64)
        weights = weights / weights.sum()
        rng = np.random.default_rng(seed + epoch)
        picks = rng.choice(len(ids), size=requests_per_epoch, p=weights)
        base = epoch * epoch_seconds
        for k, pick in enumerate(picks):
            yield TraceRecord(
                timestamp=base + (k + 1) * step, item_id=ids[int(pick)]
            )


class SocketSource:
    """A single-connection TCP request source (newline-delimited JSON).

    Binds on construction (``port=0`` picks an ephemeral port, exposed
    via :attr:`port`); iterating accepts one client and yields a
    :class:`TraceRecord` per ``{"t": ..., "id": ...}`` line until the
    peer closes.  Out-of-order timestamps are rejected, same as the
    JSONL replay reader.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        self._listener = socket.create_server((host, port))
        if timeout is not None:
            self._listener.settimeout(timeout)
        self._closed = False

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._listener.close()

    def __enter__(self) -> "SocketSource":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[TraceRecord]:
        import json as _json

        conn, _ = self._listener.accept()
        last: Optional[float] = None
        try:
            with conn, conn.makefile("r", encoding="utf-8") as stream:
                for line_no, line in enumerate(stream, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = _json.loads(line)
                    except _json.JSONDecodeError as exc:
                        raise SimulationError(
                            f"socket line {line_no}: invalid JSON: {exc}"
                        ) from exc
                    if (
                        not isinstance(row, dict)
                        or "t" not in row
                        or "id" not in row
                    ):
                        raise SimulationError(
                            f"socket line {line_no}: expected object with "
                            f"'t' and 'id' keys, got {row!r}"
                        )
                    record = TraceRecord(
                        timestamp=float(row["t"]), item_id=str(row["id"])
                    )
                    if last is not None and record.timestamp < last:
                        raise SimulationError(
                            f"socket line {line_no}: out-of-order record at "
                            f"t={record.timestamp} (last was t={last})"
                        )
                    last = record.timestamp
                    yield record
        finally:
            self.close()
