"""The live broadcast service (ROADMAP item 1): `repro serve`.

Composes streaming sketch estimation (:mod:`repro.workloads.sketch`),
warm incremental re-allocation (:mod:`repro.core.incremental`) and a
cycle-aligned drain/handover protocol into a long-running server over
a request stream.  See ``docs/serving.md``.
"""

from repro.service.clock import Clock, SystemClock
from repro.service.serve import (
    BroadcastService,
    HandoverRecord,
    LiveProgram,
    ServeEpochReport,
    SocketSource,
    drifting_stream,
    replay_source,
)

__all__ = [
    "Clock",
    "SystemClock",
    "BroadcastService",
    "LiveProgram",
    "HandoverRecord",
    "ServeEpochReport",
    "SocketSource",
    "drifting_stream",
    "replay_source",
]
